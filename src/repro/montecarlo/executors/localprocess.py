"""Local process-pool backend — the historical ``pool.py`` semantics.

One fresh :class:`~concurrent.futures.ProcessPoolExecutor` per retry
round, with the explicit start method from
:func:`~repro.montecarlo.executors.base.pool_context` (fork on Linux,
spawn elsewhere).  The completion loop is the original harness loop:
in-order streaming through :class:`OrderedMerge`, a **single** cancel
sweep fired on the first failure, and lowest-shard-index error
propagation.

On top of the historical contract this backend adds **bounded shard
retry**: a worker death (``BrokenProcessPool``) no longer condemns the
run outright — every shard the broken pool took down is re-run in a
fresh pool, up to ``max_shard_retries`` times per shard, before a
:class:`WorkerCrashError` surfaces.  Retried shards re-run the same
absolute trial ranges, so the merged results are bit-identical to an
undisturbed run.  Deterministic shard exceptions are never retried —
they would just raise again.

Metrics are emitted twice per completed shard: the backend-labelled
``mc.executor.*{backend="local-process"}`` series shared by every
executor, and the historical ``mc.pool.*{function=...}`` series keyed
by worker entrypoint, which existing dashboards (and the shard-skew
reading in ARCHITECTURE.md) already consume.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_registry

from repro.montecarlo.executors.base import (
    OrderedMerge,
    ShardExecutor,
    _summarise_args,
    _timed_shard,
    pool_context,
)

__all__ = ["LocalProcessExecutor"]


class LocalProcessExecutor(ShardExecutor):
    """Shard across a pool of local worker processes."""

    name = "local-process"

    def __init__(self, max_workers: int, *, max_shard_retries: int = 0):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}")
        self._max_workers = max_workers
        self._max_shard_retries = max_shard_retries

    def worker_count(self) -> int:
        return self._max_workers

    def describe(self) -> Dict[str, Any]:
        summary = super().describe()
        summary["max_shard_retries"] = self._max_shard_retries
        return summary

    def run_sharded(self, function: Callable[..., Any],
                    shard_args: Sequence[Tuple],
                    on_result: Optional[Callable[[int, Any], None]] = None
                    ) -> List[Any]:
        merge = OrderedMerge(len(shard_args), on_result)
        attempts: Dict[int, int] = {}
        pending = list(range(len(shard_args)))
        while pending:
            crashes, incomplete = self._round(
                function, shard_args, pending, merge)
            if merge.errors:
                # A deterministic shard exception ends the run — it
                # would raise identically on any worker, so retrying
                # crashed siblings only delays the inevitable.  Crashed
                # shards join the error set so the lowest index wins.
                for index, error in crashes.items():
                    merge.fail(index, error)
                break
            retry: List[int] = []
            exhausted = False
            for index in sorted(crashes):
                attempts[index] = attempts.get(index, 0) + 1
                if attempts[index] > self._max_shard_retries:
                    merge.fail(index, crashes[index])
                    exhausted = True
                else:
                    retry.append(index)
                    self._record_retry()
            if exhausted:
                break
            pending = sorted(retry + incomplete)
        return merge.finalise(shard_args, self._crash_text)

    def _round(self, function: Callable[..., Any],
               shard_args: Sequence[Tuple], pending: Sequence[int],
               merge: OrderedMerge
               ) -> Tuple[Dict[int, BaseException], List[int]]:
        """Run one pool over ``pending`` shards; report crashes and
        shards the pool never resolved (cancelled before starting)."""
        crashes: Dict[int, BaseException] = {}
        resolved = set()
        swept = False
        workers = min(self._max_workers, len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=pool_context()) as pool:
            submitted = time.monotonic()
            futures = {
                pool.submit(_timed_shard, function, tuple(shard_args[index])):
                index
                for index in pending
            }
            for future in as_completed(futures):
                if future.cancelled():
                    continue
                index = futures[future]
                resolved.add(index)
                try:
                    timing, value = future.result()
                except Exception as error:
                    if not swept:
                        # One sweep on the *first* failure only: a
                        # broken pool fails every still-pending future,
                        # and re-sweeping per failure would make the
                        # teardown O(shards^2) in cancel calls.
                        for sibling in futures:
                            sibling.cancel()
                        swept = True
                    if isinstance(error, BrokenExecutor):
                        crashes[index] = error
                    else:
                        merge.fail(index, error)
                    continue
                self._record_shard_timing(function, submitted, timing)
                merge.complete(index, value)
        incomplete = [index for index in pending if index not in resolved]
        return crashes, incomplete

    def _crash_text(self, lowest: int, total: int, args: Tuple) -> str:
        return (
            f"worker process died abruptly (killed / os._exit / "
            f"segfault) while the pool was running shard {lowest} of "
            f"{total}; shard args: {_summarise_args(args)}"
        )

    def _record_shard_timing(self, function: Callable[..., Any],
                             submitted: float,
                             timing: Tuple[float, float]) -> None:
        started, seconds = timing
        queue_seconds = max(0.0, started - submitted)
        self._record_shard(queue_seconds, seconds)
        # Historical mc.pool.* series, labelled by worker entrypoint so
        # engine shards and batchsim chunks stay distinguishable.
        name = getattr(function, "__name__", "shard")
        registry = get_registry()
        registry.counter("mc.pool.shards", function=name).inc()
        registry.histogram("mc.pool.shard.seconds",
                           function=name).observe(seconds)
        registry.histogram("mc.pool.shard.queue_seconds",
                           function=name).observe(queue_seconds)
