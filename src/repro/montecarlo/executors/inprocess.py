"""Serial in-process backend — the degenerate, zero-overhead executor.

Shards run one after another on the calling thread in shard-index
order, which makes the whole executor contract hold trivially:
results are index-ordered because execution is, ``on_result`` streams
each shard the moment it finishes, and the first exception *is* the
lowest-indexed one because no later shard has started (the "cancel
sweep" is the empty sweep).  There are no workers to die, so
``WorkerCrashError`` never fires and retry is moot.

This is the backend behind ``workers=1`` runs and the fallback the
heuristics pick when a batch is too small to amortise process
startup — and, because indicators are a pure function of the absolute
trial index, its results are byte-identical to every other backend's.
"""

from __future__ import annotations

import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.montecarlo.executors.base import ShardExecutor

__all__ = ["InProcessExecutor"]


class InProcessExecutor(ShardExecutor):
    """Run every shard serially on the calling thread."""

    name = "in-process"

    def worker_count(self) -> int:
        return 1

    def run_sharded(self, function: Callable[..., Any],
                    shard_args: Sequence[Tuple],
                    on_result: Optional[Callable[[int, Any], None]] = None
                    ) -> List[Any]:
        results: List[Any] = []
        queued_at = time.monotonic()
        for index, args in enumerate(shard_args):
            started = time.monotonic()
            result = function(*args)
            self._record_shard(started - queued_at,
                               time.monotonic() - started)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results
