"""Pluggable execution substrates for sharded Monte-Carlo batches.

Three backends behind one :class:`ShardExecutor` contract (see
:mod:`~repro.montecarlo.executors.base` for the guarantees):

* :class:`InProcessExecutor` — serial, zero overhead, ``workers=1``;
* :class:`LocalProcessExecutor` — the historical process pool, now
  with bounded shard retry on worker death;
* :class:`RemoteSocketExecutor` — multi-host shards over the
  ``repro.distrib`` NDJSON worker protocol.

Because indicators are a pure function of the scenario fingerprint
and the absolute trial index, all three produce byte-identical
results for any worker count and placement — the conformance and
bit-identity suites in ``tests/test_executors.py`` /
``tests/test_distrib.py`` pin exactly that.

:func:`make_executor` is the one spec-string front door every
consumer layer (TrialRunner, the experiments CLI, the simulation
service) resolves through.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.montecarlo.executors.base import (
    OrderedMerge,
    ShardExecutor,
    WorkerCrashError,
    WorkerDisconnect,
    pool_context,
)
from repro.montecarlo.executors.inprocess import InProcessExecutor
from repro.montecarlo.executors.localprocess import LocalProcessExecutor
from repro.montecarlo.executors.remote import RemoteSocketExecutor, parse_peers

__all__ = [
    "ShardExecutor",
    "InProcessExecutor",
    "LocalProcessExecutor",
    "RemoteSocketExecutor",
    "WorkerCrashError",
    "WorkerDisconnect",
    "OrderedMerge",
    "make_executor",
    "parse_peers",
    "pool_context",
]

#: Shard-retry budget the spec-string front door gives backends that
#: can lose workers.  Callers constructing executors directly choose
#: their own; specs get a sensible always-on default so a killed
#: remote worker never fails a CLI sweep that could have finished.
DEFAULT_SPEC_RETRIES = 2


def make_executor(spec: Optional[Union[str, ShardExecutor]] = None, *,
                  workers: int = 1) -> ShardExecutor:
    """Resolve an executor spec into a backend instance.

    Parameters
    ----------
    spec:
        ``None`` picks the historical default from ``workers``:
        in-process when ``workers <= 1``, a local pool of ``workers``
        processes otherwise.  A :class:`ShardExecutor` instance passes
        through untouched (shared substrate).  A string selects:

        * ``"in-process"`` — serial;
        * ``"local-process"`` — local pool sized by ``workers``;
        * ``"local-process:N"`` — local pool of exactly ``N``;
        * ``"remote:HOST:PORT,HOST:PORT,..."`` — remote workers.
    workers:
        The caller's worker count, used when the spec does not carry
        its own sizing.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    if spec is None:
        if workers <= 1:
            return InProcessExecutor()
        return LocalProcessExecutor(workers)
    if not isinstance(spec, str):
        raise TypeError(
            f"executor spec must be None, a string or a ShardExecutor, "
            f"got {type(spec).__name__}")
    text = spec.strip()
    if text == "in-process":
        return InProcessExecutor()
    if text == "local-process":
        return LocalProcessExecutor(
            max(workers, 1), max_shard_retries=DEFAULT_SPEC_RETRIES)
    if text.startswith("local-process:"):
        count_text = text.partition(":")[2]
        try:
            count = int(count_text)
        except ValueError:
            raise ValueError(
                f"bad local-process worker count: {count_text!r}") from None
        return LocalProcessExecutor(
            count, max_shard_retries=DEFAULT_SPEC_RETRIES)
    if text.startswith("remote:"):
        return RemoteSocketExecutor(
            parse_peers(text.partition(":")[2]),
            max_shard_retries=DEFAULT_SPEC_RETRIES)
    raise ValueError(
        f"unknown executor spec {spec!r} — expected 'in-process', "
        f"'local-process[:N]' or 'remote:host:port,...'")
