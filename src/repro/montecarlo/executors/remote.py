"""Remote-socket backend: shards shipped to ``repro.distrib`` workers.

Each ``run_sharded`` call opens one NDJSON TCP connection per
configured peer (the hello handshake doubles as registration: role and
protocol version are verified before any shard is shipped), then
drives the same round/retry merge loop as the local pool — a thread
per in-flight shard checks an idle connection out of a small peer
pool, ships ``{"op": "run", ...}`` with the pickled argument tuple,
and blocks for the reply.  The *main* thread owns the
:class:`OrderedMerge`, so streaming callbacks fire in shard-index
order exactly as they do locally.

Worker death is a first-class event, not an abort: a dropped
connection (EOF, reset, refused mid-run) surfaces as
:class:`WorkerDisconnect`, the peer is discarded from the pool, and
the shard is re-shipped to a surviving worker — up to
``max_shard_retries`` times per shard — before a
:class:`WorkerCrashError` reaches the caller.  Because workers are
stateless and indicators are a pure function of the absolute trial
index, the retried run's results are byte-identical to an undisturbed
one; losing a worker costs time, never bits.

Deterministic shard exceptions travel back pickled (``shard-error``
replies) and re-raise on the client with the usual lowest-index
deterministic selection; they are never retried, because they would
raise identically anywhere.

Trust model (see :mod:`repro.distrib.protocol`): pickle payloads mean
workers must only be run on trusted networks.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.distrib.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    WORKER_ROLE,
    decode_line,
    decode_payload,
    encode_line,
    encode_payload,
    function_spec,
)
from repro.montecarlo.executors.base import (
    OrderedMerge,
    ShardExecutor,
    WorkerCrashError,
    WorkerDisconnect,
    _summarise_args,
)

__all__ = ["RemoteSocketExecutor", "parse_peers"]


def parse_peers(spec: str) -> List[Tuple[str, int]]:
    """Parse ``host:port,host:port,...`` into (host, port) pairs."""
    peers: List[Tuple[str, int]] = []
    for item in spec.split(","):
        item = item.strip()
        if not item:
            continue
        host, sep, port_text = item.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"remote peer {item!r} is not of the form host:port")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"remote peer {item!r} has a non-integer port") from None
        if not 0 < port < 65536:
            raise ValueError(f"remote peer {item!r} port out of range")
        peers.append((host, port))
    if not peers:
        raise ValueError(f"no remote peers in spec {spec!r}")
    return peers


class _PeerConnection:
    """One NDJSON request/response channel to a worker."""

    def __init__(self, peer: Tuple[str, int], timeout: float):
        self.peer = peer
        self._sock = socket.create_connection(peer, timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def settimeout(self, timeout: Optional[float]) -> None:
        self._sock.settimeout(timeout)

    def request(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, block for the id-echoed reply.

        Raises :class:`WorkerDisconnect` on any transport failure —
        EOF, reset, timeout — because after one the shard's fate on
        that worker is unknown.
        """
        ident = self._next_id
        self._next_id += 1
        message = dict(message, id=ident)
        try:
            self._file.write(encode_line(message))
            self._file.flush()
            line = self._file.readline(MAX_LINE_BYTES + 1)
        except (OSError, ValueError) as error:
            raise WorkerDisconnect(
                f"worker {self.peer[0]}:{self.peer[1]} dropped the "
                f"connection: {error}") from error
        if not line:
            raise WorkerDisconnect(
                f"worker {self.peer[0]}:{self.peer[1]} closed the "
                f"connection mid-request (killed?)")
        if len(line) > MAX_LINE_BYTES:
            raise WorkerDisconnect(
                f"worker {self.peer[0]}:{self.peer[1]} sent an oversized "
                f"frame (> {MAX_LINE_BYTES} bytes)")
        try:
            reply = decode_line(line)
        except ValueError as error:
            raise WorkerDisconnect(
                f"worker {self.peer[0]}:{self.peer[1]} sent a garbage "
                f"frame: {error}") from error
        if reply.get("id") != ident:
            raise WorkerDisconnect(
                f"worker {self.peer[0]}:{self.peer[1]} echoed id "
                f"{reply.get('id')!r} for request {ident}")
        return reply

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass


class _PeerPool:
    """Thread-safe checkout of idle worker connections."""

    def __init__(self, connections: List[_PeerConnection]):
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._idle = list(connections)
        self._live = len(connections)

    @property
    def live(self) -> int:
        with self._lock:
            return self._live

    def acquire(self) -> _PeerConnection:
        """Block until an idle worker is available.

        Raises :class:`WorkerDisconnect` once every worker is dead —
        waiting any longer could never be satisfied.
        """
        with self._available:
            while not self._idle:
                if self._live == 0:
                    raise WorkerDisconnect(
                        "every remote worker has disconnected")
                self._available.wait()
            return self._idle.pop()

    def release(self, connection: _PeerConnection) -> None:
        with self._available:
            self._idle.append(connection)
            self._available.notify()

    def discard(self, connection: _PeerConnection) -> None:
        """Drop a dead connection and wake blocked acquirers so they
        can observe ``live == 0`` instead of waiting forever."""
        connection.close()
        with self._available:
            self._live -= 1
            self._available.notify_all()

    def close_all(self) -> None:
        with self._lock:
            idle, self._idle, self._live = self._idle, [], 0
        for connection in idle:
            connection.close()


class RemoteSocketExecutor(ShardExecutor):
    """Shard across remote ``repro.distrib`` worker processes."""

    name = "remote-socket"

    def __init__(self, peers: Sequence[Tuple[str, int]] | str, *,
                 max_shard_retries: int = 2,
                 connect_timeout: float = 5.0):
        if isinstance(peers, str):
            peers = parse_peers(peers)
        self._peers = [(str(host), int(port)) for host, port in peers]
        if not self._peers:
            raise ValueError("RemoteSocketExecutor needs at least one peer")
        if max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {max_shard_retries}")
        self._max_shard_retries = max_shard_retries
        self._connect_timeout = connect_timeout

    def worker_count(self) -> int:
        return len(self._peers)

    def describe(self) -> Dict[str, Any]:
        summary = super().describe()
        summary["peers"] = [f"{host}:{port}" for host, port in self._peers]
        summary["max_shard_retries"] = self._max_shard_retries
        return summary

    def heartbeat(self) -> Dict[str, bool]:
        """Ping every configured peer; True per peer that answered."""
        alive: Dict[str, bool] = {}
        for peer in self._peers:
            key = f"{peer[0]}:{peer[1]}"
            try:
                connection = _PeerConnection(peer, self._connect_timeout)
                try:
                    reply = connection.request({"op": "ping"})
                    alive[key] = bool(reply.get("ok"))
                finally:
                    connection.close()
            except (OSError, WorkerDisconnect):
                alive[key] = False
        return alive

    # -- the sharded run ----------------------------------------------

    def run_sharded(self, function: Callable[..., Any],
                    shard_args: Sequence[Tuple],
                    on_result: Optional[Callable[[int, Any], None]] = None
                    ) -> List[Any]:
        spec = function_spec(function)
        pool = self._connect()
        try:
            merge = OrderedMerge(len(shard_args), on_result)
            attempts: Dict[int, int] = {}
            pending = list(range(len(shard_args)))
            while pending:
                if pool.live == 0:
                    merge.fail(min(pending), WorkerDisconnect(
                        "every remote worker has disconnected"))
                    break
                crashes, incomplete = self._round(
                    spec, shard_args, pending, merge, pool)
                if merge.errors:
                    for index, error in crashes.items():
                        merge.fail(index, error)
                    break
                retry: List[int] = []
                exhausted = False
                for index in sorted(crashes):
                    attempts[index] = attempts.get(index, 0) + 1
                    if attempts[index] > self._max_shard_retries:
                        merge.fail(index, crashes[index])
                        exhausted = True
                    else:
                        retry.append(index)
                        self._record_retry()
                if exhausted:
                    break
                pending = sorted(retry + incomplete)
            return merge.finalise(shard_args, self._crash_text)
        finally:
            pool.close_all()

    def _connect(self) -> _PeerPool:
        """Open + handshake one connection per peer; need at least one."""
        connections: List[_PeerConnection] = []
        unreachable: List[str] = []
        for peer in self._peers:
            key = f"{peer[0]}:{peer[1]}"
            try:
                connection = _PeerConnection(peer, self._connect_timeout)
                hello = connection.request({"op": "hello"})
                if not hello.get("ok") or hello.get("role") != WORKER_ROLE:
                    connection.close()
                    unreachable.append(
                        f"{key} (not a {WORKER_ROLE}: {hello.get('role')!r})")
                    continue
                if hello.get("protocol") != PROTOCOL_VERSION:
                    connection.close()
                    unreachable.append(
                        f"{key} (protocol {hello.get('protocol')!r}, "
                        f"need {PROTOCOL_VERSION})")
                    continue
                connection.settimeout(None)  # shards take as long as they take
                connections.append(connection)
            except (OSError, WorkerDisconnect) as error:
                unreachable.append(f"{key} ({error})")
        if not connections:
            raise WorkerCrashError(
                f"no remote workers reachable: {'; '.join(unreachable)}")
        return _PeerPool(connections)

    def _round(self, spec: str, shard_args: Sequence[Tuple],
               pending: Sequence[int], merge: OrderedMerge, pool: _PeerPool
               ) -> Tuple[Dict[int, BaseException], List[int]]:
        crashes: Dict[int, BaseException] = {}
        resolved = set()
        swept = False
        workers = min(max(pool.live, 1), len(pending))
        with ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix="repro-remote-shard") as dispatch:
            submitted = time.monotonic()
            futures = {
                dispatch.submit(self._run_one, pool, spec,
                                tuple(shard_args[index]), submitted): index
                for index in pending
            }
            for future in as_completed(futures):
                if future.cancelled():
                    continue
                index = futures[future]
                resolved.add(index)
                try:
                    queue_seconds, seconds, value = future.result()
                except Exception as error:
                    if not swept:
                        for sibling in futures:
                            sibling.cancel()
                        swept = True
                    if isinstance(error, WorkerDisconnect):
                        crashes[index] = error
                    else:
                        merge.fail(index, error)
                    continue
                self._record_shard(queue_seconds, seconds)
                merge.complete(index, value)
        incomplete = [index for index in pending if index not in resolved]
        return crashes, incomplete

    def _run_one(self, pool: _PeerPool, spec: str, args: Tuple,
                 submitted: float) -> Tuple[float, float, Any]:
        """Ship one shard to an idle worker; return (queue, run, value)."""
        connection = pool.acquire()
        queue_seconds = max(0.0, time.monotonic() - submitted)
        try:
            payload, digest = encode_payload(args)
            reply = connection.request({
                "op": "run", "protocol": PROTOCOL_VERSION,
                "function": spec, "payload": payload, "digest": digest,
            })
        except WorkerDisconnect:
            pool.discard(connection)
            raise
        if reply.get("ok"):
            try:
                value = decode_payload(reply.get("payload", ""),
                                       reply.get("digest", ""))
            except ValueError as error:
                pool.discard(connection)
                raise WorkerDisconnect(
                    f"worker {connection.peer[0]}:{connection.peer[1]} "
                    f"returned a corrupt result frame: {error}") from error
            pool.release(connection)
            seconds = float(reply.get("seconds", 0.0))
            return queue_seconds, seconds, value
        # Structured failure: the worker itself is healthy.
        pool.release(connection)
        kind = reply.get("error")
        if kind == "shard-error":
            raise decode_payload(reply["payload"], reply["digest"])
        raise RuntimeError(
            f"worker {connection.peer[0]}:{connection.peer[1]} rejected "
            f"the shard ({kind}): {reply.get('message')}")

    def _crash_text(self, lowest: int, total: int, args: Tuple) -> str:
        peers = ", ".join(f"{host}:{port}" for host, port in self._peers)
        return (
            f"remote worker died or disconnected while running shard "
            f"{lowest} of {total} (retries exhausted); shard args: "
            f"{_summarise_args(args)}; peers: {peers}"
        )
