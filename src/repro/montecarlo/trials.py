"""Batched Monte-Carlo trial running with reproducible sharding.

Every feasibility theorem in the paper is a statement about a success
*probability*, so each experiment ends up running the same loop: derive
a per-trial random stream, execute, count successes.  This module
centralises that loop and makes it fast through a three-tier dispatch
(``fastsim sampler → batchsim → scalar engine``; see
:mod:`repro.montecarlo.dispatch` for the tier table):

* when a registered fastsim sampler matches the scenario, the whole
  batch collapses into one vectorised draw — the sampler consumes the
  *root* stream directly (deterministic per root seed and identical to
  calling the sampler by hand, but a different bit pattern than the
  engine path);
* otherwise, when the scenario is history-oblivious and the algorithm
  implements the batch interface (every algorithm family in the
  library does), the :mod:`repro.batchsim` engine executes all trials
  together on stacked ``(B, n)`` arrays — and with ``workers > 1`` on
  a large enough batch, the trial index range is partitioned into
  contiguous chunks executed by one ``BatchExecution`` per worker
  process; trial ``i`` still consumes ``root.child("mc", i)``, so the
  indicators are **bit-identical** to the scalar engine path for any
  worker count;
* the scalar engine fallback — reached only for history-dependent
  failure models (the adaptive equalizing adversaries), custom success
  predicates, or when a caller deliberately pins it — instantiates the
  algorithm **once per shard** (protocols carry all per-run state),
  takes the engine's trace-free no-history fast path, and can shard
  across processes; trial ``i`` always draws from
  ``root.child("mc", i)``, so the per-trial indicator vector is
  bit-identical for any worker count — and identical to
  :func:`repro.analysis.estimation.estimate_success` under the same
  root stream.

Both sharded paths run on the same pool harness
(:mod:`repro.montecarlo.pool`): explicit start method, shard-ordered
merging, and first-exception propagation with cancellation.

Example::

    runner = TrialRunner(lambda: SimpleOmission(g, 0, 1, RADIO, p=0.3),
                         OmissionFailures(0.3))
    result = runner.run(trials=10_000, seed_or_stream=7)
    result.estimate, result.stats().describe(), result.backend
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.analysis.estimation import (
    MonteCarloResult,
    clopper_pearson,
    hoeffding_interval,
    wilson_interval,
)
from repro.batchsim.engine import (
    BatchExecution,
    batch_execution,
    run_batch_shard,
)
from repro.engine.protocol import Algorithm
from repro.engine.simulator import ExecutionResult, run_execution
from repro.failures.base import FailureModel, FaultFree
from repro.montecarlo.dispatch import SamplerEntry, find_sampler
from repro.montecarlo.pool import run_sharded
from repro.rng import RngStream, as_stream, derive_seed

__all__ = ["TrialRunner", "TrialResult", "RunningTally",
           "ENGINE_BACKEND", "BATCHSIM_BACKEND", "MIN_BATCHSIM_SHARD"]

AlgorithmFactory = Callable[[], Algorithm]
SuccessPredicate = Callable[[ExecutionResult], bool]

ENGINE_BACKEND = "engine"
BATCHSIM_BACKEND = "batchsim"


class RunningTally:
    """Streaming success/trial counts with on-demand intervals.

    Shards report in as they complete; the tally can answer the point
    estimate and Wilson / Chernoff–Hoeffding / Clopper–Pearson
    intervals at any moment without storing indicators.
    """

    __slots__ = ("_successes", "_trials")

    def __init__(self) -> None:
        self._successes = 0
        self._trials = 0

    def update(self, indicators: np.ndarray) -> None:
        """Fold one batch of boolean indicators into the tally."""
        self._successes += int(np.count_nonzero(indicators))
        self._trials += int(len(indicators))

    @property
    def successes(self) -> int:
        """Successful trials so far."""
        return self._successes

    @property
    def trials(self) -> int:
        """Trials folded in so far."""
        return self._trials

    @property
    def estimate(self) -> float:
        """Point estimate ``successes / trials`` (0.0 before any trial)."""
        return self._successes / self._trials if self._trials else 0.0

    def wilson(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Wilson score interval on the current counts."""
        return wilson_interval(self._successes, self._trials, confidence)

    def hoeffding(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Chernoff–Hoeffding interval on the current counts."""
        return hoeffding_interval(self._successes, self._trials, confidence)

    def clopper_pearson(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Exact Clopper–Pearson interval on the current counts."""
        return clopper_pearson(self._successes, self._trials, confidence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningTally({self._successes}/{self._trials})"


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one :meth:`TrialRunner.run` batch.

    Attributes
    ----------
    indicators:
        Per-trial success booleans, in trial order.  On the engine and
        batchsim backends trial ``i`` used stream
        ``root.child("mc", i)`` (the two are bit-identical); a fastsim
        backend drew the whole vector from the root stream in one
        vectorised call (same law, different bit pattern).
    backend:
        ``"engine"``, ``"batchsim"`` or ``"fastsim:<sampler name>"``.
    workers:
        Process count the batch **actually** ran with (1 =
        in-process), which can be less than the runner's ``workers=``
        request: a fastsim draw is always a single vectorised call, and
        the sharded tiers fall back in-process when the batch is too
        small to amortise process startup.
    seed:
        Root seed the per-trial streams were derived from.
    """

    indicators: np.ndarray
    backend: str
    workers: int
    seed: int
    confidence: float = 0.99

    @property
    def trials(self) -> int:
        """Number of trials run."""
        return int(len(self.indicators))

    @property
    def successes(self) -> int:
        """Number of successful trials."""
        return int(np.count_nonzero(self.indicators))

    @property
    def estimate(self) -> float:
        """Point estimate of the success probability."""
        return self.successes / self.trials

    def stats(self, confidence: Optional[float] = None) -> MonteCarloResult:
        """Counts plus exact Clopper–Pearson interval."""
        confidence = self.confidence if confidence is None else confidence
        lower, upper = clopper_pearson(self.successes, self.trials, confidence)
        return MonteCarloResult(
            successes=self.successes, trials=self.trials,
            confidence=confidence, lower=lower, upper=upper,
        )

    def wilson(self, confidence: Optional[float] = None) -> Tuple[float, float]:
        """Wilson score interval on the batch counts."""
        confidence = self.confidence if confidence is None else confidence
        return wilson_interval(self.successes, self.trials, confidence)

    def hoeffding(self, confidence: Optional[float] = None) -> Tuple[float, float]:
        """Chernoff–Hoeffding interval on the batch counts."""
        confidence = self.confidence if confidence is None else confidence
        return hoeffding_interval(self.successes, self.trials, confidence)

    def describe(self) -> str:
        """Human-readable one-liner for tables and logs."""
        return f"{self.stats().describe()} [{self.backend}]"


def _default_metadata(algorithm: Algorithm) -> Dict[str, Any]:
    """``algorithm.metadata()`` when offered, else empty."""
    metadata = getattr(algorithm, "metadata", None)
    if callable(metadata):
        return metadata()
    return {}


def _trial_stream(root_seed: int, index: int) -> RngStream:
    """The canonical stream of trial ``index`` — ``root.child("mc", i)``."""
    return RngStream(derive_seed(root_seed, "mc", index), ("mc", index))


def _run_shard(factory: AlgorithmFactory,
               failure_model: Optional[FailureModel],
               metadata: Optional[Dict[str, Any]],
               success: Optional[SuccessPredicate],
               root_seed: int,
               start: int, stop: int,
               algorithm: Optional[Algorithm] = None) -> np.ndarray:
    """Run trials ``start..stop-1`` serially and return their indicators.

    Top-level (picklable) so process pools can call it; the algorithm
    is built once and reused for every trial of the shard (in-process
    callers may hand over an already-built instance instead).
    """
    if algorithm is None:
        algorithm = factory()
    if metadata is None:
        metadata = _default_metadata(algorithm)
    indicators = np.empty(stop - start, dtype=bool)
    for offset, index in enumerate(range(start, stop)):
        result = run_execution(
            algorithm, failure_model, _trial_stream(root_seed, index),
            metadata=metadata, record_trace=False,
        )
        if success is None:
            indicators[offset] = result.is_successful_broadcast()
        else:
            indicators[offset] = success(result)
    return indicators


def _shard_bounds(trials: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(trials)`` into ``shards`` contiguous near-even runs."""
    bounds = np.linspace(0, trials, shards + 1, dtype=int)
    return [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


#: Minimum trials per batchsim process chunk.  One batchsim trial costs
#: a sliver of a numpy call, so a chunk must hold a few hundred trials
#: before the fork + eligibility-reprobe startup (milliseconds) is
#: amortised; below the floor the batch stays in-process.  A quarter of
#: the engine's internal ``DEFAULT_CHUNK`` keeps every spawned worker's
#: first vectorised call reasonably full.
MIN_BATCHSIM_SHARD = 128


def _batchsim_shards(trials: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous batchsim chunk bounds: one per worker, floor-limited.

    Unlike the engine path (4 shards per worker for load balancing),
    batchsim chunks have uniform per-trial cost, so exactly one chunk
    per worker minimises the per-process eligibility-reprobe overhead.
    """
    if workers == 1:
        return _shard_bounds(trials, 1)
    return _shard_bounds(
        trials, min(workers, max(1, trials // MIN_BATCHSIM_SHARD))
    )


class TrialRunner:
    """Batched Monte-Carlo runner with three-tier auto-dispatch.

    Parameters
    ----------
    algorithm_factory:
        Zero-argument callable building the algorithm under test.  It
        is invoked once per shard (not per trial); with ``workers > 1``
        it must be picklable (a module-level function or class, not a
        lambda).
    failure_model:
        The failure model shared by all trials (default
        :class:`~repro.failures.base.FaultFree`).  Failure randomness
        comes from the per-trial streams, so sharing the instance keeps
        trials independent.
    success:
        Optional predicate mapping an :class:`ExecutionResult` to a
        success boolean.  Default: ``result.is_successful_broadcast()``.
        Supplying a custom predicate disables fastsim dispatch — the
        samplers only reproduce the broadcast-success law.
    metadata:
        Execution metadata override; default is the factory
        algorithm's ``metadata()`` (so ``is_successful_broadcast`` can
        read the source message).
    workers:
        Process count for the sharded paths — scalar-engine trial
        shards *and* batchsim trial chunks.  ``1`` runs in-process;
        batchsim runs never cut chunks smaller than
        :data:`MIN_BATCHSIM_SHARD` trials (so batches under two
        chunks' worth stay in-process, and mid-sized batches may use
        fewer processes than requested).  The per-trial indicators are
        bit-identical either way, and :attr:`TrialResult.workers`
        reports the count actually used.  With ``workers > 1`` the
        factory must be picklable on both sharded paths.
    use_fastsim:
        Allow dispatching to a registered vectorised sampler when one
        matches the scenario.  Fallback to the next tier is automatic.
    use_batchsim:
        Allow dispatching to the vectorised :mod:`repro.batchsim`
        engine when the scenario is eligible and no fastsim sampler
        matched.  Its indicators are bit-identical to the scalar
        engine's, so disabling it (together with ``use_fastsim``) is
        only needed to time or pin the scalar path itself.
    """

    def __init__(self, algorithm_factory: AlgorithmFactory,
                 failure_model: Optional[FailureModel] = None,
                 *,
                 success: Optional[SuccessPredicate] = None,
                 metadata: Optional[Dict[str, Any]] = None,
                 workers: int = 1,
                 use_fastsim: bool = True,
                 use_batchsim: bool = True):
        if not callable(algorithm_factory):
            raise TypeError(
                f"algorithm_factory must be callable, got "
                f"{type(algorithm_factory).__name__}"
            )
        if failure_model is not None and not isinstance(failure_model, FailureModel):
            raise TypeError(
                f"failure_model must be a FailureModel, got "
                f"{type(failure_model).__name__}"
            )
        self._factory = algorithm_factory
        self._failure_model = failure_model if failure_model is not None else FaultFree()
        self._success = success
        self._metadata = dict(metadata) if metadata is not None else None
        self._workers = check_positive_int(workers, "workers")
        self._use_fastsim = bool(use_fastsim)
        self._use_batchsim = bool(use_batchsim)
        self._probe: Optional[Tuple[Optional[SamplerEntry],
                                    Optional[BatchExecution],
                                    Optional[Algorithm]]] = None

    @property
    def failure_model(self) -> FailureModel:
        """The shared failure model."""
        return self._failure_model

    @property
    def workers(self) -> int:
        """Requested process count for the sharded paths (engine shards
        and batchsim chunks); :attr:`TrialResult.workers` reports what a
        run actually used."""
        return self._workers

    def dispatch_entry(self) -> Optional[SamplerEntry]:
        """The fastsim sampler this runner would dispatch to, if any."""
        entry, _, _ = self._probe_dispatch()
        return entry

    def dispatch_backend(self) -> str:
        """The backend tag ``run()`` would report for this scenario."""
        entry, batch, _ = self._probe_dispatch()
        if entry is not None:
            return f"fastsim:{entry.name}"
        if batch is not None:
            return BATCHSIM_BACKEND
        return ENGINE_BACKEND

    def _probe_dispatch(self) -> Tuple[Optional[SamplerEntry],
                                       Optional[BatchExecution],
                                       Optional[Algorithm]]:
        """Probe the dispatch tiers, returning the probe algorithm too.

        The (entry, batch execution, algorithm) triple is cached on the
        runner, so the factory, the registry scan and the batchsim
        eligibility check run once per runner no matter how many times
        ``dispatch_entry()`` / ``run()`` are called — algorithms are
        immutable (all per-run state lives in their protocols) and safe
        to share across batches.  A custom success predicate disables
        both vectorised tiers: they only reproduce the
        broadcast-success law.
        """
        if self._success is not None or not (self._use_fastsim
                                             or self._use_batchsim):
            return None, None, None
        if self._probe is None:
            algorithm = self._factory()
            entry = (find_sampler(algorithm, self._failure_model)
                     if self._use_fastsim else None)
            batch = None
            if entry is None and self._use_batchsim:
                batch = batch_execution(
                    algorithm, self._failure_model, metadata=self._metadata
                )
            self._probe = (entry, batch, algorithm)
        return self._probe

    def run(self, trials: int, seed_or_stream=0,
            confidence: float = 0.99,
            progress: Optional[Callable[[RunningTally], None]] = None
            ) -> TrialResult:
        """Run ``trials`` independent trials and collect the indicators.

        Parameters
        ----------
        trials:
            Number of independent trials.
        seed_or_stream:
            Root randomness.  On the engine and batchsim paths trial
            ``i`` draws from ``root.child("mc", i)`` regardless of
            worker count or batch chunking; a dispatched fastsim
            sampler consumes the root stream directly.  Either way the
            result is a pure function of the root seed.
        confidence:
            Default confidence level stored on the result.
        progress:
            Optional callback receiving the :class:`RunningTally` as
            each shard folds in, in shard order (sharded engine and
            batchsim paths), or once (fastsim and in-process paths).
        """
        trials = check_positive_int(trials, "trials")
        confidence = check_probability(confidence, "confidence",
                                       allow_zero=False)
        stream = as_stream(seed_or_stream)
        root_seed = stream.seed
        tally = RunningTally()

        entry, batch, algorithm = self._probe_dispatch()
        if entry is not None:
            indicators = np.asarray(
                entry.sample(algorithm, self._failure_model, trials, stream),
                dtype=bool,
            )
            tally.update(indicators)
            if progress is not None:
                progress(tally)
            return TrialResult(
                indicators=indicators, backend=f"fastsim:{entry.name}",
                workers=1, seed=root_seed, confidence=confidence,
            )
        if batch is not None:
            chunks = _batchsim_shards(trials, self._workers)
            if len(chunks) <= 1:
                indicators = batch.run(trials, root_seed)
                used_workers = 1
                tally.update(indicators)
                if progress is not None:
                    progress(tally)
            else:
                parts = run_sharded(
                    run_batch_shard,
                    [
                        (self._factory, self._failure_model, self._metadata,
                         root_seed, start, stop)
                        for start, stop in chunks
                    ],
                    max_workers=self._workers,
                    on_result=self._fold_shard(tally, progress),
                )
                indicators = np.concatenate(parts)
                used_workers = len(chunks)
            return TrialResult(
                indicators=indicators, backend=BATCHSIM_BACKEND,
                workers=used_workers, seed=root_seed, confidence=confidence,
            )

        shards = _shard_bounds(trials, self._effective_shards(trials))
        if len(shards) <= 1 or self._workers == 1:
            parts = []
            for start, stop in shards:
                part = _run_shard(
                    self._factory, self._failure_model, self._metadata,
                    self._success, root_seed, start, stop,
                    algorithm=algorithm,
                )
                tally.update(part)
                if progress is not None:
                    progress(tally)
                parts.append(part)
            indicators = np.concatenate(parts)
            used_workers = 1
        else:
            parts = run_sharded(
                _run_shard,
                [
                    (self._factory, self._failure_model, self._metadata,
                     self._success, root_seed, start, stop)
                    for start, stop in shards
                ],
                max_workers=self._workers,
                on_result=self._fold_shard(tally, progress),
            )
            indicators = np.concatenate(parts)
            used_workers = min(self._workers, len(shards))
        return TrialResult(
            indicators=indicators, backend=ENGINE_BACKEND,
            workers=used_workers, seed=root_seed, confidence=confidence,
        )

    @staticmethod
    def _fold_shard(tally: RunningTally,
                    progress: Optional[Callable[[RunningTally], None]]
                    ) -> Callable[[int, np.ndarray], None]:
        """The pool's in-order shard callback: stream counts as they land."""

        def fold(index: int, part: np.ndarray) -> None:
            tally.update(part)
            if progress is not None:
                progress(tally)

        return fold

    def _effective_shards(self, trials: int) -> int:
        """Shard count: a few shards per worker, never exceeding trials."""
        if self._workers == 1:
            return 1
        return min(trials, self._workers * 4)
