"""Batched Monte-Carlo trial running with reproducible sharding.

Every feasibility theorem in the paper is a statement about a success
*probability*, so each experiment ends up running the same loop: derive
a per-trial random stream, execute, count successes.  This module
centralises that loop and makes it fast through a three-tier dispatch
(``fastsim sampler → batchsim → scalar engine``; see
:mod:`repro.montecarlo.dispatch` for the tier table):

* when a registered fastsim sampler matches the scenario, the whole
  batch collapses into one vectorised draw — the sampler consumes the
  *root* stream directly (deterministic per root seed and identical to
  calling the sampler by hand, but a different bit pattern than the
  engine path);
* otherwise, when the scenario is history-oblivious and the algorithm
  implements the batch interface (every algorithm family in the
  library does), the :mod:`repro.batchsim` engine executes all trials
  together on stacked ``(B, n)`` arrays — and with ``workers > 1`` on
  a large enough batch, the trial index range is partitioned into
  contiguous chunks executed by one ``BatchExecution`` per worker
  process; trial ``i`` still consumes ``root.child("mc", i)``, so the
  indicators are **bit-identical** to the scalar engine path for any
  worker count;
* the scalar engine fallback — reached only for history-dependent
  failure models (the adaptive equalizing adversaries), custom success
  predicates, or when a caller deliberately pins it — instantiates the
  algorithm **once per shard** (protocols carry all per-run state),
  takes the engine's trace-free no-history fast path, and can shard
  across processes; trial ``i`` always draws from
  ``root.child("mc", i)``, so the per-trial indicator vector is
  bit-identical for any worker count — and identical to
  :func:`repro.analysis.estimation.estimate_success` under the same
  root stream.

Both sharded paths run on the same pool harness
(:mod:`repro.montecarlo.pool`): explicit start method, shard-ordered
merging, and first-exception propagation with cancellation.

Besides fixed budgets (:meth:`TrialRunner.run`), the runner offers a
**sequential mode** (:meth:`TrialRunner.run_until`): the batch grows in
powers of two, each extension folding into a :class:`RunningTally`,
until the Chernoff–Hoeffding or empirical-Bernstein interval width
drops below a target.  The stopping rule is a pure function of the
per-trial indicator prefix, so a sequential run's indicators are
exactly the prefix of a fixed-budget run under the same root seed — on
all three tiers and for any worker count.

Example::

    runner = TrialRunner(lambda: SimpleOmission(g, 0, 1, RADIO, p=0.3),
                         OmissionFailures(0.3))
    result = runner.run(trials=10_000, seed_or_stream=7)
    result.estimate, result.stats().describe(), result.backend
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.analysis.estimation import (
    MonteCarloResult,
    clopper_pearson,
    empirical_bernstein_interval,
    hoeffding_interval,
    wilson_interval,
)
from repro.batchsim.engine import (
    BatchExecution,
    batch_execution,
    run_batch_shard,
)
from repro.engine.protocol import Algorithm
from repro.engine.simulator import ExecutionResult, run_execution
from repro.failures.base import FailureModel, FaultFree
from repro.montecarlo.dispatch import SamplerEntry, find_sampler
from repro.montecarlo.executors import ShardExecutor, make_executor
from repro.obs import get_registry
from repro.rng import RngStream, as_stream, derive_seed

__all__ = ["TrialRunner", "TrialResult", "RunningTally",
           "SequentialResult", "SequentialStep", "SEQUENTIAL_BOUNDS",
           "ENGINE_BACKEND", "BATCHSIM_BACKEND", "MIN_BATCHSIM_SHARD"]

AlgorithmFactory = Callable[[], Algorithm]
SuccessPredicate = Callable[[ExecutionResult], bool]

ENGINE_BACKEND = "engine"
BATCHSIM_BACKEND = "batchsim"


class RunningTally:
    """Streaming success/trial counts with on-demand intervals.

    Shards report in as they complete; the tally can answer the point
    estimate and Wilson / Chernoff–Hoeffding / empirical-Bernstein /
    Clopper–Pearson intervals at any moment without storing indicators.
    "Any moment" includes before the first batch lands: an empty tally
    answers the degenerate all-of-``[0, 1]`` interval instead of
    raising (the sequential stopping rule consults the tally at trial
    count zero).
    """

    __slots__ = ("_successes", "_trials")

    def __init__(self) -> None:
        self._successes = 0
        self._trials = 0

    def update(self, indicators: np.ndarray) -> None:
        """Fold one batch of boolean indicators into the tally."""
        self._successes += int(np.count_nonzero(indicators))
        self._trials += int(len(indicators))

    @property
    def successes(self) -> int:
        """Successful trials so far."""
        return self._successes

    @property
    def trials(self) -> int:
        """Trials folded in so far."""
        return self._trials

    @property
    def estimate(self) -> float:
        """Point estimate ``successes / trials`` (0.0 before any trial)."""
        return self._successes / self._trials if self._trials else 0.0

    def wilson(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Wilson score interval on the current counts (``(0, 1)`` empty)."""
        if self._trials == 0:
            return 0.0, 1.0
        return wilson_interval(self._successes, self._trials, confidence)

    def hoeffding(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Chernoff–Hoeffding interval on the current counts (``(0, 1)`` empty)."""
        if self._trials == 0:
            return 0.0, 1.0
        return hoeffding_interval(self._successes, self._trials, confidence)

    def bernstein(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Empirical-Bernstein interval on the counts (``(0, 1)`` empty).

        The Maurer–Pontil bound of
        :func:`repro.analysis.estimation.empirical_bernstein_interval`:
        variance-adaptive, so on decisive counts it shrinks like
        ``1/t`` where Hoeffding only manages ``1/sqrt(t)`` — the
        preferred stopping bound for sequential threshold sweeps.
        """
        if self._trials == 0:
            return 0.0, 1.0
        return empirical_bernstein_interval(
            self._successes, self._trials, confidence
        )

    def clopper_pearson(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Exact Clopper–Pearson interval on the counts (``(0, 1)`` empty)."""
        if self._trials == 0:
            return 0.0, 1.0
        return clopper_pearson(self._successes, self._trials, confidence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunningTally({self._successes}/{self._trials})"


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one :meth:`TrialRunner.run` batch.

    Attributes
    ----------
    indicators:
        Per-trial success booleans, in trial order.  On the engine and
        batchsim backends trial ``i`` used stream
        ``root.child("mc", i)`` (the two are bit-identical); a fastsim
        backend drew the whole vector from the root stream in one
        vectorised call (same law, different bit pattern).
    backend:
        ``"engine"``, ``"batchsim"`` or ``"fastsim:<sampler name>"``.
    workers:
        Process count the batch **actually** ran with (1 =
        in-process), which can be less than the runner's ``workers=``
        request: a fastsim draw is always a single vectorised call, and
        the sharded tiers fall back in-process when the batch is too
        small to amortise process startup.
    seed:
        Root seed the per-trial streams were derived from.
    timings:
        Optional wall-clock breakdown of the batch in seconds —
        ``{"probe": dispatch-probe time, "run": execution time,
        "total": probe + run}`` for fixed budgets, ``{"total": ...}``
        for sequential runs.  Pure observability: excluded from
        equality and repr, and never part of the determinism contract
        (two bit-identical results may carry different timings).
    """

    indicators: np.ndarray
    backend: str
    workers: int
    seed: int
    confidence: float = 0.99
    timings: Optional[Mapping[str, float]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def trials(self) -> int:
        """Number of trials run."""
        return int(len(self.indicators))

    @property
    def successes(self) -> int:
        """Number of successful trials."""
        return int(np.count_nonzero(self.indicators))

    @property
    def estimate(self) -> float:
        """Point estimate of the success probability (0.0 when empty).

        A zero-length indicator vector — directly constructable, and
        what a sequential run whose target was met before the first
        extension produces — mirrors :class:`RunningTally`'s empty
        guard instead of dividing by zero.
        """
        return self.successes / self.trials if self.trials else 0.0

    def stats(self, confidence: Optional[float] = None) -> MonteCarloResult:
        """Counts plus exact Clopper–Pearson interval.

        An empty result carries the degenerate all-of-``[0, 1]``
        interval — zero trials support no narrower claim.
        """
        confidence = self.confidence if confidence is None else confidence
        if self.trials == 0:
            lower, upper = 0.0, 1.0
        else:
            lower, upper = clopper_pearson(
                self.successes, self.trials, confidence
            )
        return MonteCarloResult(
            successes=self.successes, trials=self.trials,
            confidence=confidence, lower=lower, upper=upper,
        )

    def wilson(self, confidence: Optional[float] = None) -> Tuple[float, float]:
        """Wilson score interval on the batch counts (``(0, 1)`` empty)."""
        confidence = self.confidence if confidence is None else confidence
        if self.trials == 0:
            return 0.0, 1.0
        return wilson_interval(self.successes, self.trials, confidence)

    def hoeffding(self, confidence: Optional[float] = None) -> Tuple[float, float]:
        """Chernoff–Hoeffding interval on the batch counts (``(0, 1)`` empty)."""
        confidence = self.confidence if confidence is None else confidence
        if self.trials == 0:
            return 0.0, 1.0
        return hoeffding_interval(self.successes, self.trials, confidence)

    def bernstein(self, confidence: Optional[float] = None) -> Tuple[float, float]:
        """Empirical-Bernstein interval on the batch counts (``(0, 1)`` empty)."""
        confidence = self.confidence if confidence is None else confidence
        if self.trials == 0:
            return 0.0, 1.0
        return empirical_bernstein_interval(
            self.successes, self.trials, confidence
        )

    def describe(self) -> str:
        """Human-readable one-liner for tables and logs."""
        return f"{self.stats().describe()} [{self.backend}]"


#: The stopping bounds ``TrialRunner.run_until`` accepts, mapping the
#: bound name to the ``RunningTally`` interval method it consults.
#: ``"hoeffding"`` is distribution-free with a trials-only margin;
#: ``"bernstein"`` (Maurer–Pontil) adapts to the empirical variance and
#: is the one that lets adaptive sweeps leave decisive cells early.
SEQUENTIAL_BOUNDS = ("hoeffding", "bernstein")


@dataclass(frozen=True)
class SequentialStep:
    """One extension of a sequential run: the state after it folded in.

    Attributes
    ----------
    trials, successes:
        Cumulative counts once this extension's indicators landed.
    width:
        The stopping-bound interval width at those counts — what the
        stopping rule compared against ``target_width``.
    """

    trials: int
    successes: int
    width: float


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of one :meth:`TrialRunner.run_until` sequential run.

    Wraps the final :class:`TrialResult` (whose indicators are exactly
    the prefix of a fixed-budget run under the same root seed) together
    with the per-extension trace the stopping rule walked.

    Attributes
    ----------
    result:
        The final batch over every trial actually run.
    steps:
        One :class:`SequentialStep` per extension, in order; empty when
        the target was already met at trial count zero (a
        ``target_width`` of 1.0).
    target_width:
        The interval width the run was asked to reach.
    bound:
        Stopping bound consulted (``"hoeffding"`` or ``"bernstein"``).
    met:
        Whether the final width reached the target — ``False`` means
        the run exhausted ``max_trials`` first, and the interval is
        honest but wider than asked.
    """

    result: TrialResult
    steps: Tuple[SequentialStep, ...]
    target_width: float
    bound: str
    met: bool

    @property
    def indicators(self) -> np.ndarray:
        """Per-trial success booleans of the final batch."""
        return self.result.indicators

    @property
    def trials(self) -> int:
        """Total trials actually run."""
        return self.result.trials

    @property
    def successes(self) -> int:
        """Total successful trials."""
        return self.result.successes

    @property
    def estimate(self) -> float:
        """Point estimate of the success probability."""
        return self.result.estimate

    @property
    def backend(self) -> str:
        """Backend tag the extensions ran on."""
        return self.result.backend

    @property
    def workers(self) -> int:
        """Largest process count any extension actually used."""
        return self.result.workers

    @property
    def seed(self) -> int:
        """Root seed shared by every extension."""
        return self.result.seed

    @property
    def width(self) -> float:
        """Final stopping-bound interval width (1.0 before any trial)."""
        return self.steps[-1].width if self.steps else 1.0

    def stats(self, confidence: Optional[float] = None) -> MonteCarloResult:
        """Counts plus exact Clopper–Pearson interval (final batch)."""
        return self.result.stats(confidence)

    def describe(self) -> str:
        """Human-readable one-liner for tables and logs."""
        verdict = "met" if self.met else "NOT met"
        return (f"{self.result.describe()} after {len(self.steps)} "
                f"extension(s): {self.bound} width {self.width:.4f} "
                f"(target {self.target_width:.4f} {verdict})")


def _default_metadata(algorithm: Algorithm) -> Dict[str, Any]:
    """``algorithm.metadata()`` when offered, else empty."""
    metadata = getattr(algorithm, "metadata", None)
    if callable(metadata):
        return metadata()
    return {}


def _trial_stream(root_seed: int, index: int) -> RngStream:
    """The canonical stream of trial ``index`` — ``root.child("mc", i)``."""
    return RngStream(derive_seed(root_seed, "mc", index), ("mc", index))


def _run_shard(factory: AlgorithmFactory,
               failure_model: Optional[FailureModel],
               metadata: Optional[Dict[str, Any]],
               success: Optional[SuccessPredicate],
               root_seed: int,
               start: int, stop: int,
               algorithm: Optional[Algorithm] = None) -> np.ndarray:
    """Run trials ``start..stop-1`` serially and return their indicators.

    Top-level (picklable) so process pools can call it; the algorithm
    is built once and reused for every trial of the shard (in-process
    callers may hand over an already-built instance instead).
    """
    if algorithm is None:
        algorithm = factory()
    if metadata is None:
        metadata = _default_metadata(algorithm)
    indicators = np.empty(stop - start, dtype=bool)
    for offset, index in enumerate(range(start, stop)):
        result = run_execution(
            algorithm, failure_model, _trial_stream(root_seed, index),
            metadata=metadata, record_trace=False,
        )
        if success is None:
            indicators[offset] = result.is_successful_broadcast()
        else:
            indicators[offset] = success(result)
    return indicators


def _record_batch(backend: str, trials: int, seconds: float) -> None:
    """Report one executed batch to the process-wide metrics registry.

    Two series per backend tier: the monotone trial counter
    ``mc.trials`` and the batch-latency histogram ``mc.run.seconds``.
    Recording is inert — counters and histograms consume no randomness
    — so instrumented runs stay bit-identical to uninstrumented ones.
    """
    registry = get_registry()
    registry.counter("mc.trials", backend=backend).inc(trials)
    registry.histogram("mc.run.seconds", backend=backend).observe(seconds)


def _shard_bounds(trials: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(trials)`` into ``shards`` contiguous near-even runs."""
    bounds = np.linspace(0, trials, shards + 1, dtype=int)
    return [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


#: Minimum trials per batchsim process chunk.  One batchsim trial costs
#: a sliver of a numpy call, so a chunk must hold a few hundred trials
#: before the fork + eligibility-reprobe startup (milliseconds) is
#: amortised; below the floor the batch stays in-process.  A quarter of
#: the engine's internal ``DEFAULT_CHUNK`` keeps every spawned worker's
#: first vectorised call reasonably full.
MIN_BATCHSIM_SHARD = 128


def _batchsim_shards(trials: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous batchsim chunk bounds: one per worker, floor-limited.

    Unlike the engine path (4 shards per worker for load balancing),
    batchsim chunks have uniform per-trial cost, so exactly one chunk
    per worker minimises the per-process eligibility-reprobe overhead.
    """
    if workers == 1:
        return _shard_bounds(trials, 1)
    return _shard_bounds(
        trials, min(workers, max(1, trials // MIN_BATCHSIM_SHARD))
    )


class TrialRunner:
    """Batched Monte-Carlo runner with three-tier auto-dispatch.

    Parameters
    ----------
    algorithm_factory:
        Zero-argument callable building the algorithm under test.  It
        is invoked once per shard (not per trial); with ``workers > 1``
        it must be picklable (a module-level function or class, not a
        lambda).
    failure_model:
        The failure model shared by all trials (default
        :class:`~repro.failures.base.FaultFree`).  Failure randomness
        comes from the per-trial streams, so sharing the instance keeps
        trials independent.
    success:
        Optional predicate mapping an :class:`ExecutionResult` to a
        success boolean.  Default: ``result.is_successful_broadcast()``.
        Supplying a custom predicate disables fastsim dispatch — the
        samplers only reproduce the broadcast-success law.
    metadata:
        Execution metadata override; default is the factory
        algorithm's ``metadata()`` (so ``is_successful_broadcast`` can
        read the source message).
    workers:
        Process count for the sharded paths — scalar-engine trial
        shards *and* batchsim trial chunks.  ``1`` runs in-process;
        batchsim runs never cut chunks smaller than
        :data:`MIN_BATCHSIM_SHARD` trials (so batches under two
        chunks' worth stay in-process, and mid-sized batches may use
        fewer processes than requested).  The per-trial indicators are
        bit-identical either way, and :attr:`TrialResult.workers`
        reports the count actually used.  With ``workers > 1`` the
        factory must be picklable on both sharded paths.
    executor:
        Execution substrate for the sharded paths: ``None`` (default)
        resolves from ``workers`` exactly as before — in-process at
        ``workers=1``, a local process pool otherwise; a spec string
        (``"in-process"``, ``"local-process[:N]"``,
        ``"remote:host:port,..."``) or a
        :class:`~repro.montecarlo.executors.ShardExecutor` instance
        selects a backend explicitly (instances are shared, so a
        service can schedule many runners onto one substrate).  The
        shard-floor heuristics size shard lists against the executor's
        worker count, and by the bit-identity invariant the indicators
        do not depend on the choice.
    use_fastsim:
        Allow dispatching to a registered vectorised sampler when one
        matches the scenario.  Fallback to the next tier is automatic.
    use_batchsim:
        Allow dispatching to the vectorised :mod:`repro.batchsim`
        engine when the scenario is eligible and no fastsim sampler
        matched.  Its indicators are bit-identical to the scalar
        engine's, so disabling it (together with ``use_fastsim``) is
        only needed to time or pin the scalar path itself.
    """

    def __init__(self, algorithm_factory: AlgorithmFactory,
                 failure_model: Optional[FailureModel] = None,
                 *,
                 success: Optional[SuccessPredicate] = None,
                 metadata: Optional[Dict[str, Any]] = None,
                 workers: int = 1,
                 executor: Optional[Union[str, ShardExecutor]] = None,
                 use_fastsim: bool = True,
                 use_batchsim: bool = True):
        if not callable(algorithm_factory):
            raise TypeError(
                f"algorithm_factory must be callable, got "
                f"{type(algorithm_factory).__name__}"
            )
        if failure_model is not None and not isinstance(failure_model, FailureModel):
            raise TypeError(
                f"failure_model must be a FailureModel, got "
                f"{type(failure_model).__name__}"
            )
        self._factory = algorithm_factory
        self._failure_model = failure_model if failure_model is not None else FaultFree()
        self._success = success
        self._metadata = dict(metadata) if metadata is not None else None
        self._workers = check_positive_int(workers, "workers")
        self._executor = make_executor(executor, workers=self._workers)
        # Every sharding heuristic keys off the substrate's parallel
        # capacity, not the (possibly defaulted) workers argument, so
        # an explicit executor sizes shard lists correctly.
        self._parallelism = self._executor.worker_count()
        self._use_fastsim = bool(use_fastsim)
        self._use_batchsim = bool(use_batchsim)
        self._probe: Optional[Tuple[Optional[SamplerEntry],
                                    Optional[BatchExecution],
                                    Optional[Algorithm]]] = None
        # Sequential-mode fallback probe: when a matching fastsim entry
        # is not prefix-stable, run_until needs the batchsim
        # eligibility answer _probe_dispatch never computed (it stops
        # at the first matching tier).  Cached separately.
        self._sequential_batch: Optional[BatchExecution] = None
        self._sequential_probed = False

    @property
    def algorithm_factory(self) -> AlgorithmFactory:
        """The scenario's algorithm factory (what fingerprints hash)."""
        return self._factory

    @property
    def failure_model(self) -> FailureModel:
        """The shared failure model."""
        return self._failure_model

    @property
    def workers(self) -> int:
        """Requested process count for the sharded paths (engine shards
        and batchsim chunks); :attr:`TrialResult.workers` reports what a
        run actually used."""
        return self._workers

    @property
    def shard_executor(self) -> ShardExecutor:
        """The resolved execution substrate behind the sharded paths."""
        return self._executor

    def dispatch_entry(self) -> Optional[SamplerEntry]:
        """The fastsim sampler this runner would dispatch to, if any."""
        entry, _, _ = self._probe_dispatch()
        return entry

    def dispatch_backend(self) -> str:
        """The backend tag ``run()`` would report for this scenario."""
        entry, batch, _ = self._probe_dispatch()
        if entry is not None:
            return f"fastsim:{entry.name}"
        if batch is not None:
            return BATCHSIM_BACKEND
        return ENGINE_BACKEND

    def _probe_dispatch(self) -> Tuple[Optional[SamplerEntry],
                                       Optional[BatchExecution],
                                       Optional[Algorithm]]:
        """Probe the dispatch tiers, returning the probe algorithm too.

        The (entry, batch execution, algorithm) triple is cached on the
        runner, so the factory, the registry scan and the batchsim
        eligibility check run once per runner no matter how many times
        ``dispatch_entry()`` / ``run()`` are called — algorithms are
        immutable (all per-run state lives in their protocols) and safe
        to share across batches.  A custom success predicate disables
        both vectorised tiers: they only reproduce the
        broadcast-success law.
        """
        if self._success is not None or not (self._use_fastsim
                                             or self._use_batchsim):
            return None, None, None
        if self._probe is None:
            algorithm = self._factory()
            entry = (find_sampler(algorithm, self._failure_model)
                     if self._use_fastsim else None)
            batch = None
            if entry is None and self._use_batchsim:
                batch = batch_execution(
                    algorithm, self._failure_model, metadata=self._metadata
                )
            self._probe = (entry, batch, algorithm)
        return self._probe

    def run(self, trials: int, seed_or_stream=0,
            confidence: float = 0.99,
            progress: Optional[Callable[[RunningTally], None]] = None
            ) -> TrialResult:
        """Run ``trials`` independent trials and collect the indicators.

        Parameters
        ----------
        trials:
            Number of independent trials.
        seed_or_stream:
            Root randomness.  On the engine and batchsim paths trial
            ``i`` draws from ``root.child("mc", i)`` regardless of
            worker count or batch chunking; a dispatched fastsim
            sampler consumes the root stream directly.  Either way the
            result is a pure function of the root seed.
        confidence:
            Default confidence level stored on the result.
        progress:
            Optional callback receiving the :class:`RunningTally` as
            each shard folds in, in shard order (sharded engine and
            batchsim paths), or once (fastsim and in-process paths).
        """
        trials = check_positive_int(trials, "trials")
        confidence = check_probability(confidence, "confidence",
                                       allow_zero=False)
        stream = as_stream(seed_or_stream)
        root_seed = stream.seed
        tally = RunningTally()

        probe_start = time.perf_counter()
        entry, batch, algorithm = self._probe_dispatch()
        run_start = time.perf_counter()
        probe_seconds = run_start - probe_start

        def finish(seconds: float) -> Dict[str, float]:
            """Timings breakdown shared by every backend branch."""
            return {"probe": probe_seconds, "run": seconds,
                    "total": probe_seconds + seconds}

        if entry is not None:
            indicators = np.asarray(
                entry.sample(algorithm, self._failure_model, trials, stream),
                dtype=bool,
            )
            tally.update(indicators)
            if progress is not None:
                progress(tally)
            run_seconds = time.perf_counter() - run_start
            backend = f"fastsim:{entry.name}"
            _record_batch(backend, trials, run_seconds)
            return TrialResult(
                indicators=indicators, backend=backend,
                workers=1, seed=root_seed, confidence=confidence,
                timings=finish(run_seconds),
            )
        if batch is not None:
            chunks = _batchsim_shards(trials, self._parallelism)
            if len(chunks) <= 1:
                indicators = batch.run(trials, root_seed)
                used_workers = 1
                tally.update(indicators)
                if progress is not None:
                    progress(tally)
            else:
                parts = self._executor.run_sharded(
                    run_batch_shard,
                    [
                        (self._factory, self._failure_model, self._metadata,
                         root_seed, start, stop)
                        for start, stop in chunks
                    ],
                    on_result=self._fold_shard(tally, progress),
                )
                indicators = np.concatenate(parts)
                used_workers = len(chunks)
            run_seconds = time.perf_counter() - run_start
            _record_batch(BATCHSIM_BACKEND, trials, run_seconds)
            return TrialResult(
                indicators=indicators, backend=BATCHSIM_BACKEND,
                workers=used_workers, seed=root_seed, confidence=confidence,
                timings=finish(run_seconds),
            )

        shards = _shard_bounds(trials, self._effective_shards(trials))
        if len(shards) <= 1 or self._parallelism == 1:
            parts = []
            for start, stop in shards:
                part = _run_shard(
                    self._factory, self._failure_model, self._metadata,
                    self._success, root_seed, start, stop,
                    algorithm=algorithm,
                )
                tally.update(part)
                if progress is not None:
                    progress(tally)
                parts.append(part)
            indicators = np.concatenate(parts)
            used_workers = 1
        else:
            parts = self._executor.run_sharded(
                _run_shard,
                [
                    (self._factory, self._failure_model, self._metadata,
                     self._success, root_seed, start, stop)
                    for start, stop in shards
                ],
                on_result=self._fold_shard(tally, progress),
            )
            indicators = np.concatenate(parts)
            used_workers = min(self._parallelism, len(shards))
        run_seconds = time.perf_counter() - run_start
        _record_batch(ENGINE_BACKEND, trials, run_seconds)
        return TrialResult(
            indicators=indicators, backend=ENGINE_BACKEND,
            workers=used_workers, seed=root_seed, confidence=confidence,
            timings=finish(run_seconds),
        )

    def run_until(self, target_width: float, max_trials: int,
                  seed_or_stream=0, confidence: float = 0.99, *,
                  bound: str = "hoeffding",
                  initial_trials: int = 512,
                  progress: Optional[Callable[[RunningTally], None]] = None
                  ) -> SequentialResult:
        """Grow the batch in powers of two until the interval is narrow.

        Budgets run ``initial_trials → 2·initial_trials → …``, capped
        at ``max_trials``; after each extension folds into the running
        tally, the run stops as soon as the ``bound`` interval width at
        ``confidence`` drops to ``target_width`` or below.  The
        stopping rule is a pure function of the per-trial indicator
        prefix, so determinism and bit-identity carry over from
        :meth:`run`: the indicators of a sequential run are **exactly
        the prefix** of a fixed-budget run under the same root seed, on
        every backend and for any worker count, and the stopping point
        itself is deterministic per root seed.

        Per tier, extensions work as follows.  Engine and batchsim
        extensions execute the absolute trial range ``[prev, next)`` —
        trial ``i`` draws from ``root.child("mc", i)`` whatever the
        range bounds, so prefix identity is free.  A dispatched fastsim
        sampler re-draws the whole grown prefix from a fresh root
        stream and folds in only the tail, which is valid exactly when
        the entry honours the ``prefix_stable`` contract
        (:class:`repro.montecarlo.dispatch.SamplerEntry`); a matching
        entry without the flag is routed to the batchsim or engine tier
        for the entire sequential run instead.

        Parameters
        ----------
        target_width:
            Stop once ``upper - lower`` of the stopping bound is at or
            below this; in ``(0, 1]`` (1.0 is met by the empty tally,
            yielding a zero-trial result).
        max_trials:
            Hard budget cap.  When it is hit before the target, the
            result reports ``met=False`` with the honest final width.
        bound:
            ``"hoeffding"`` (trials-only margin) or ``"bernstein"``
            (Maurer–Pontil, variance-adaptive — decisive cells stop
            after a few hundred trials).
        initial_trials:
            First extension's budget (default 512).
        progress:
            As in :meth:`run`: called with the running tally as each
            shard of each extension folds in.

        Returns
        -------
        A :class:`SequentialResult`: the final :class:`TrialResult`
        plus one :class:`SequentialStep` per extension.
        """
        target_width = check_probability(target_width, "target_width",
                                         allow_zero=False, allow_one=True)
        max_trials = check_positive_int(max_trials, "max_trials")
        initial_trials = check_positive_int(initial_trials, "initial_trials")
        confidence = check_probability(confidence, "confidence",
                                       allow_zero=False)
        if bound not in SEQUENTIAL_BOUNDS:
            raise ValueError(
                f"bound must be one of {SEQUENTIAL_BOUNDS}, got {bound!r}"
            )
        stream = as_stream(seed_or_stream)
        root_seed = stream.seed
        tally = RunningTally()
        steps: List[SequentialStep] = []
        pieces: List[np.ndarray] = []
        used_workers = 1
        budget = 0
        total_seconds = 0.0
        width = self._bound_width(tally, bound, confidence)
        while width > target_width and budget < max_trials:
            next_budget = min(
                initial_trials if budget == 0 else 2 * budget, max_trials
            )
            extension_start = time.perf_counter()
            part, workers = self._run_extension(
                budget, next_budget, root_seed, tally, progress
            )
            extension_seconds = time.perf_counter() - extension_start
            total_seconds += extension_seconds
            _record_batch(self.sequential_backend(), int(len(part)),
                          extension_seconds)
            pieces.append(part)
            used_workers = max(used_workers, workers)
            budget = next_budget
            width = self._bound_width(tally, bound, confidence)
            steps.append(SequentialStep(
                trials=tally.trials, successes=tally.successes, width=width,
            ))
        indicators = (np.concatenate(pieces) if pieces
                      else np.zeros(0, dtype=bool))
        result = TrialResult(
            indicators=indicators, backend=self.sequential_backend(),
            workers=used_workers, seed=root_seed, confidence=confidence,
            timings={"total": total_seconds},
        )
        return SequentialResult(
            result=result, steps=tuple(steps), target_width=target_width,
            bound=bound, met=width <= target_width,
        )

    def sequential_backend(self) -> str:
        """The backend tag ``run_until()`` would report.

        Differs from :meth:`dispatch_backend` exactly when the matching
        fastsim entry is not prefix-stable — sequential runs then fall
        through to the batchsim or engine tier.
        """
        entry, batch, _ = self._sequential_tiers()
        if entry is not None:
            return f"fastsim:{entry.name}"
        if batch is not None:
            return BATCHSIM_BACKEND
        return ENGINE_BACKEND

    def _sequential_tiers(self) -> Tuple[Optional[SamplerEntry],
                                         Optional[BatchExecution],
                                         Optional[Algorithm]]:
        """The dispatch triple sequential extensions actually use.

        Identical to :meth:`_probe_dispatch` except that a matching
        fastsim entry without the ``prefix_stable`` contract is
        replaced by the tier below it: extensions re-draw the sampler's
        grown prefix, which is only sound under that contract.
        """
        entry, batch, algorithm = self._probe_dispatch()
        if entry is not None and not entry.prefix_stable:
            entry = None
            if self._use_batchsim and not self._sequential_probed:
                self._sequential_batch = batch_execution(
                    algorithm, self._failure_model, metadata=self._metadata
                )
                self._sequential_probed = True
            batch = self._sequential_batch
        return entry, batch, algorithm

    def _run_extension(self, start: int, stop: int, root_seed: int,
                       tally: RunningTally,
                       progress: Optional[Callable[[RunningTally], None]]
                       ) -> Tuple[np.ndarray, int]:
        """Run trials ``start..stop-1`` of a sequential run.

        Returns the extension's indicators and the worker count it
        actually used, folding shards into ``tally`` in order as they
        land (exactly like :meth:`run`).
        """
        entry, batch, algorithm = self._sequential_tiers()
        if entry is not None:
            full = np.asarray(
                entry.sample(algorithm, self._failure_model, stop,
                             as_stream(root_seed)),
                dtype=bool,
            )
            part = full[start:]
            tally.update(part)
            if progress is not None:
                progress(tally)
            return part, 1
        length = stop - start
        if batch is not None:
            chunks = [(lo + start, hi + start)
                      for lo, hi in _batchsim_shards(length, self._parallelism)]
            if len(chunks) <= 1:
                part = batch.run_range(start, stop, root_seed)
                tally.update(part)
                if progress is not None:
                    progress(tally)
                return part, 1
            parts = self._executor.run_sharded(
                run_batch_shard,
                [
                    (self._factory, self._failure_model, self._metadata,
                     root_seed, lo, hi)
                    for lo, hi in chunks
                ],
                on_result=self._fold_shard(tally, progress),
            )
            return np.concatenate(parts), len(chunks)
        shards = [
            (lo + start, hi + start)
            for lo, hi in _shard_bounds(length, self._effective_shards(length))
        ]
        if len(shards) <= 1 or self._parallelism == 1:
            parts = []
            for lo, hi in shards:
                part = _run_shard(
                    self._factory, self._failure_model, self._metadata,
                    self._success, root_seed, lo, hi, algorithm=algorithm,
                )
                tally.update(part)
                if progress is not None:
                    progress(tally)
                parts.append(part)
            return np.concatenate(parts), 1
        parts = self._executor.run_sharded(
            _run_shard,
            [
                (self._factory, self._failure_model, self._metadata,
                 self._success, root_seed, lo, hi)
                for lo, hi in shards
            ],
            on_result=self._fold_shard(tally, progress),
        )
        return np.concatenate(parts), min(self._parallelism, len(shards))

    @staticmethod
    def _bound_width(tally: RunningTally, bound: str,
                     confidence: float) -> float:
        """Interval width of the stopping bound on the current counts."""
        lower, upper = (tally.hoeffding(confidence) if bound == "hoeffding"
                        else tally.bernstein(confidence))
        return upper - lower

    @staticmethod
    def _fold_shard(tally: RunningTally,
                    progress: Optional[Callable[[RunningTally], None]]
                    ) -> Callable[[int, np.ndarray], None]:
        """The pool's in-order shard callback: stream counts as they land."""

        def fold(index: int, part: np.ndarray) -> None:
            tally.update(part)
            if progress is not None:
                progress(tally)

        return fold

    def _effective_shards(self, trials: int) -> int:
        """Shard count: a few shards per worker, never exceeding trials."""
        if self._parallelism == 1:
            return 1
        return min(trials, self._parallelism * 4)
