"""Async adapter around :class:`~repro.montecarlo.trials.TrialRunner`.

The serving layer (:mod:`repro.serve`) lives on an asyncio event loop,
but a Monte-Carlo batch is CPU-bound synchronous work — a fastsim draw
is a few numpy calls, a batchsim run is seconds of vectorised rounds,
and a sharded run blocks on a process pool.  This module is the one
bridge between the two worlds: it executes a runner's batch on an
executor thread (the default loop executor unless one is supplied), so
the loop stays responsive while trials run, and concurrent batches of
*different* scenarios overlap — the heavy lifting happens in numpy and
in worker processes, both of which release the GIL's grip on the loop
thread.

Determinism is untouched: the wrapper adds no randomness and no
scheduling dependence — the indicators of ``await arun.run(trials,
seed)`` are byte-identical to ``runner.run(trials, seed)`` because it
*is* that call, merely hosted on another thread.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Executor
from functools import partial
from typing import Optional

from repro.montecarlo.trials import SequentialResult, TrialResult, TrialRunner

__all__ = ["AsyncTrialRunner"]


class AsyncTrialRunner:
    """Run a :class:`TrialRunner`'s batches without blocking the loop.

    Parameters
    ----------
    runner:
        The configured synchronous runner (dispatch tier, workers,
        success predicate all live there).
    executor:
        Optional :class:`concurrent.futures.Executor` to host the
        blocking calls; ``None`` uses the event loop's default
        executor.  Callers that bound service concurrency (e.g.
        :class:`repro.serve.service.SimulationService`) pass a sized
        ``ThreadPoolExecutor``.
    """

    def __init__(self, runner: TrialRunner,
                 executor: Optional[Executor] = None):
        if not isinstance(runner, TrialRunner):
            raise TypeError(
                f"runner must be a TrialRunner, got {type(runner).__name__}"
            )
        self._runner = runner
        self._executor = executor

    @property
    def runner(self) -> TrialRunner:
        """The wrapped synchronous runner."""
        return self._runner

    @property
    def shard_executor(self):
        """The wrapped runner's shard substrate
        (:class:`~repro.montecarlo.executors.ShardExecutor`) — distinct
        from the *thread* executor hosting the blocking call.  A remote
        substrate composes cleanly with this adapter: the loop thread
        hands the batch to a pool thread, which ships shards to worker
        hosts and blocks on sockets, leaving the loop untouched."""
        return self._runner.shard_executor

    async def _call(self, bound) -> object:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, bound)

    async def run(self, trials: int, seed_or_stream=0,
                  confidence: float = 0.99) -> TrialResult:
        """Awaitable :meth:`TrialRunner.run` — identical result bytes."""
        return await self._call(partial(
            self._runner.run, trials, seed_or_stream, confidence
        ))

    async def run_until(self, target_width: float, max_trials: int,
                        seed_or_stream=0, confidence: float = 0.99, *,
                        bound: str = "hoeffding",
                        initial_trials: int = 512) -> SequentialResult:
        """Awaitable :meth:`TrialRunner.run_until` — same contract."""
        return await self._call(partial(
            self._runner.run_until, target_width, max_trials,
            seed_or_stream, confidence, bound=bound,
            initial_trials=initial_trials,
        ))
