"""Fastsim sampler registry and auto-dispatch.

The engine is the semantic ground truth but simulates every round of
every node; the :mod:`repro.fastsim` samplers exploit algorithm
structure to draw the success event directly, thousands of trials per
numpy call.  This module is the bridge: a registry mapping *scenario
shapes* — an (algorithm, failure model) combination recognised by a
matcher predicate — to the vectorised sampler that reproduces the
engine's success law for that shape.

:class:`repro.montecarlo.trials.TrialRunner` consults the registry and
transparently dispatches to a matching sampler, falling back to the
next backend tier otherwise.  Matchers must be *conservative*: a
sampler is only offered when its distribution provably coincides with
the engine's (see ``tests/test_fastsim_agreement.py``), so dispatch
never changes what is being estimated, only how fast.

Backend tiers
-------------
Dispatch walks three tiers, most specialised first; the tier taken is
reported as ``TrialResult.backend``, and the *sharding* column says how
``workers=N`` maps onto processes (``TrialResult.workers`` reports the
count actually used — both sharded tiers run on the shared pool harness
of :mod:`repro.montecarlo.pool`):

==================  ==============================  ====================  ====================
tier / backend tag  eligibility                     what runs             process sharding
==================  ==============================  ====================  ====================
``fastsim:<name>``  first registry entry whose      one closed-form       none — a single
                    matcher accepts the scenario    vectorised draw of    vectorised call;
                    (table below); default success  the success law       ``workers`` is
                    predicate only                  (root stream)         ignored (reports 1)
``batchsim``        no sampler matched; failure     the vectorised        contiguous trial
                    model is history-oblivious      multi-trial engine:   chunks, one
                    and ``supports_batch(model)``   all trials advance    ``BatchExecution``
                    (fault-free, omission with      together on stacked   per worker process
                    ``p`` or per-node ``p_v``,      ``(B, n)`` arrays;    (floor of 128
                    simple-malicious with a         indicators are        trials per chunk —
                    batchable oblivious adversary   **bit-identical**     small batches stay
                    at every restriction level      to the engine tier    in-process);
                    the adversary *certifies* —     (per-trial streams    chunk→result merge
                    incl. LIMITED/FLIP — and the    ``root.child("mc",    in index order, so
                    slowing reduction via           i)``)                 bit-identical for
                    per-trial adversary-stream                            any worker count
                    replay); the algorithm
                    implements ``batch_program()``
                    / ``batch_payloads()`` (lift
                    table below); default success
                    predicate only
``engine``          history-dependent failure       scalar reference      contiguous trial
                    models (the adaptive            executions, one       shards (4 per
                    equalizing adversaries,         trial at a time       worker, for load
                    nested slowing wrappers),                             balancing) across
                    custom success predicates,                            worker processes;
                    algorithms without a batch                            bit-identical for
                    program — or callers that                             any worker count
                    deliberately pin it
                    (``use_fastsim=False,
                    use_batchsim=False``) for
                    engine-validation columns
==================  ==============================  ====================  ====================

Every algorithm family in the library implements the batch interface,
so the engine tier is *only* auto-dispatched for history-dependent
failure models and custom success predicates.  The batchsim lift
families, by registered name and the algorithm classes they batch
(behaviour summaries live in one place — the
:func:`repro.batchsim.programs.registered_lifts` registry, rendered by
``python -m repro.experiments describe``; this list is pinned against
that registry by ``tests/test_docs_sync.py``):

==================  ==================================================
lift                algorithm classes
==================  ==================================================
tree-phase          ``SimpleOmission`` / ``SimpleMalicious``
radio-repeat        ``RadioRepeat``
flooding            ``FastFlooding``
layered-schedule    ``LayeredScheduleBroadcast``
slot-schedule       ``RoundRobinBroadcast`` / ``PrimeScheduleBroadcast``
hello               ``HelloProtocolAlgorithm``
windowed            ``WindowedMalicious``
kucera-plan         ``KuceraBroadcast``
==================  ==================================================

The batchsim tier's trial-for-trial agreement with the engine is
property-tested in ``tests/test_batchsim.py``; because the two tiers
share per-trial streams, promoting a scenario from ``engine`` to
``batchsim`` can never change an experiment's numbers, only its
wall-clock.

Built-in entries (registered by :mod:`repro.montecarlo.samplers`, in
lookup order):

========================  ==================================================
entry                     scenario shape it matches
========================  ==================================================
simple-omission           ``SimpleOmission`` (either model) + plain
                          ``OmissionFailures``, ``Ms != default``
simple-malicious-mp       ``SimpleMalicious`` (message passing) +
                          ``MaliciousFailures`` with the complement or
                          random-flip adversary, ``Ms = 1``, default 0
simple-malicious-radio    ``SimpleMalicious`` (radio) +
                          ``MaliciousFailures(RadioWorstCaseAdversary)``,
                          full restriction, ``Ms = 1``, default 0, on a
                          *tree topology* (sibling listeners share their
                          parent's phase faults; non-tree edges would
                          correlate their remaining neighbourhoods)
flooding                  ``FastFlooding`` + plain ``OmissionFailures``,
                          ``Ms != default``
radio-repeat-omission     ``RadioRepeat`` with the ``any`` adoption rule
                          (Omission-Radio, Thm 3.4) + plain
                          ``OmissionFailures``, ``Ms != default``
radio-repeat-malicious    ``RadioRepeat`` with the ``majority`` rule
                          (Malicious-Radio, Thm 3.4) +
                          ``MaliciousFailures`` with the complement or
                          random-flip adversary, ``Ms = 1``, default 0
equalizing-star           ``SimpleMalicious`` (radio) on a star whose
                          source is a leaf +
                          ``EqualizingStarAdversary`` targeting that
                          source/center — native, or wrapped in the
                          matching ``SlowingAdversary`` reduction
                          (Thm 2.4 impossibility); bit messages,
                          default 0, full restriction
layered-omission          ``LayeredScheduleBroadcast`` on ``G(m)``
                          (Lemma 3.4 / Thm 3.3 schedules) + plain
                          ``OmissionFailures``, ``Ms != default``
========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.engine.protocol import Algorithm
from repro.failures.base import FailureModel
from repro.obs import get_registry
from repro.rng import RngStream

__all__ = [
    "SamplerEntry",
    "register_sampler",
    "unregister_sampler",
    "find_sampler",
    "registered_samplers",
]

Matcher = Callable[[Algorithm, FailureModel], bool]
Sampler = Callable[[Algorithm, FailureModel, int, RngStream], np.ndarray]


@dataclass(frozen=True)
class SamplerEntry:
    """One registered vectorised sampler.

    Attributes
    ----------
    name:
        Registry key, also reported as ``TrialResult.backend``
        (``"fastsim:<name>"``).
    matches:
        Predicate deciding whether this sampler reproduces the engine's
        success distribution for a given (algorithm, failure model).
    sample:
        ``(algorithm, failure, trials, stream) -> bool ndarray`` of
        per-trial success indicators.
    prefix_stable:
        Whether the sampler honours the **prefix contract**: for any
        ``m < N`` and the same fresh root stream,
        ``sample(..., N, stream)[:m]`` is bit-identical to
        ``sample(..., m, stream)``.  A sampler earns the flag by making
        every vectorised draw either (a) a single call whose *leading*
        axis is the trial count (numpy generators fill C-order, so
        trial ``i``'s values occupy the same bit-stream positions for
        every budget), or (b) a call on a *named child stream* of the
        root that is consumed by no other draw site.  Sequential runs
        (:meth:`repro.montecarlo.TrialRunner.run_until`) extend a
        fastsim batch by re-drawing the grown prefix, so only
        prefix-stable entries may serve them — others are routed to
        the batchsim/engine tiers, whose per-trial
        ``root.child("mc", i)`` streams are prefix-stable by
        construction.  Property-pinned in ``tests/test_sequential.py``.
    """

    name: str
    matches: Matcher
    sample: Sampler
    prefix_stable: bool = False


_REGISTRY: Dict[str, SamplerEntry] = {}


def register_sampler(name: str, matches: Matcher, sample: Sampler,
                     prefix_stable: bool = False) -> SamplerEntry:
    """Register a vectorised sampler under ``name``.

    Registration order is lookup order; the first matching entry wins.
    ``prefix_stable`` declares the sequential-extension contract (see
    :class:`SamplerEntry`); only flag it on samplers whose draw layout
    actually guarantees it — the property suite will catch a lie, but
    after a sequential sweep already mis-stopped.
    """
    if name in _REGISTRY:
        raise ValueError(f"duplicate sampler name {name!r}")
    entry = SamplerEntry(name=name, matches=matches, sample=sample,
                         prefix_stable=prefix_stable)
    _REGISTRY[name] = entry
    return entry


def unregister_sampler(name: str) -> None:
    """Remove a registered sampler (primarily for tests)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown sampler {name!r}")
    del _REGISTRY[name]


def find_sampler(algorithm: Algorithm,
                 failure_model: FailureModel) -> Optional[SamplerEntry]:
    """First registered sampler matching the scenario, or ``None``.

    Every probe outcome is counted in the metrics registry
    (``mc.dispatch.match`` labelled by entry, or
    ``mc.dispatch.fallthrough`` when no sampler matched), so dispatch
    coverage of a live workload — which scenarios collapse into the
    fastsim tier and which fall through — is observable.  Probes run
    once per :class:`~repro.montecarlo.trials.TrialRunner`, so the
    counters track distinct runner shapes, not per-trial volume.
    """
    for entry in _REGISTRY.values():
        if entry.matches(algorithm, failure_model):
            get_registry().counter("mc.dispatch.match",
                                   entry=entry.name).inc()
            return entry
    get_registry().counter("mc.dispatch.fallthrough").inc()
    return None


def registered_samplers() -> List[SamplerEntry]:
    """All registered samplers in lookup order."""
    return list(_REGISTRY.values())
