"""Batched Monte-Carlo trial subsystem with three-tier auto-dispatch.

The shared harness behind every success-probability experiment:
:class:`TrialRunner` dispatches each batch to the fastest backend that
provably reproduces the scenario's success law — a registered
:mod:`repro.fastsim` closed-form sampler, the vectorised
:mod:`repro.batchsim` multi-trial engine (large batches shard into
per-process trial chunks), or scalar reference-engine executions
(shared algorithm state, trace-free fast path, optional process
sharding) — all with reproducible per-trial streams, so indicators
are bit-identical for any ``workers=`` count on the engine and
batchsim tiers.  See :mod:`repro.montecarlo.dispatch` for the tier
table and :mod:`repro.montecarlo.executors` for the pluggable
execution substrate behind the sharded paths (in-process, local
process pool, remote socket workers) — byte-identical indicators on
all of them.
"""

from repro.batchsim.engine import supports_batchsim
from repro.montecarlo.asyncrun import AsyncTrialRunner
from repro.montecarlo.executors import (
    InProcessExecutor,
    LocalProcessExecutor,
    RemoteSocketExecutor,
    ShardExecutor,
    WorkerDisconnect,
    make_executor,
)
from repro.montecarlo.fingerprint import (
    FINGERPRINT_VERSION,
    PICKLE_PROTOCOL,
    payload_fingerprint,
    scenario_fingerprint,
)
from repro.montecarlo.dispatch import (
    SamplerEntry,
    find_sampler,
    register_sampler,
    registered_samplers,
    unregister_sampler,
)
from repro.montecarlo import samplers as _builtin_samplers  # noqa: F401  (registers)
from repro.montecarlo.pool import WorkerCrashError
from repro.montecarlo.trials import (
    BATCHSIM_BACKEND,
    ENGINE_BACKEND,
    SEQUENTIAL_BOUNDS,
    RunningTally,
    SequentialResult,
    SequentialStep,
    TrialResult,
    TrialRunner,
)

__all__ = [
    "TrialRunner",
    "TrialResult",
    "AsyncTrialRunner",
    "scenario_fingerprint",
    "FINGERPRINT_VERSION",
    "RunningTally",
    "SequentialResult",
    "SequentialStep",
    "SEQUENTIAL_BOUNDS",
    "ShardExecutor",
    "InProcessExecutor",
    "LocalProcessExecutor",
    "RemoteSocketExecutor",
    "make_executor",
    "payload_fingerprint",
    "PICKLE_PROTOCOL",
    "WorkerCrashError",
    "WorkerDisconnect",
    "SamplerEntry",
    "register_sampler",
    "unregister_sampler",
    "find_sampler",
    "registered_samplers",
    "supports_batchsim",
    "BATCHSIM_BACKEND",
    "ENGINE_BACKEND",
]
