"""Batched Monte-Carlo trial subsystem with fastsim auto-dispatch.

The shared harness behind every success-probability experiment:
:class:`TrialRunner` batches reference-engine executions (shared
algorithm state, trace-free fast path, optional process sharding with
reproducible per-trial streams) and auto-dispatches to a registered
:mod:`repro.fastsim` vectorised sampler when one provably matches the
scenario.
"""

from repro.montecarlo.dispatch import (
    SamplerEntry,
    find_sampler,
    register_sampler,
    registered_samplers,
    unregister_sampler,
)
from repro.montecarlo import samplers as _builtin_samplers  # noqa: F401  (registers)
from repro.montecarlo.trials import RunningTally, TrialResult, TrialRunner

__all__ = [
    "TrialRunner",
    "TrialResult",
    "RunningTally",
    "SamplerEntry",
    "register_sampler",
    "unregister_sampler",
    "find_sampler",
    "registered_samplers",
]
