"""Compatibility front for the historical process-pool harness.

The pool semantics that used to live here — explicit start method,
index-ordered streaming merge, lowest-shard-index first-exception
propagation with a single cancel sweep, ``WorkerCrashError``
attribution, ``mc.pool.*`` metrics — moved verbatim into the
pluggable executor substrate (:mod:`repro.montecarlo.executors`),
where :class:`~repro.montecarlo.executors.LocalProcessExecutor` is
their home and :class:`~repro.montecarlo.executors.RemoteSocketExecutor`
extends them across hosts.

This module keeps the original one-shot entrypoint alive for existing
callers and the conformance pins in ``tests/``: :func:`run_sharded`
is exactly the historical contract (no shard retry — a worker crash
surfaces immediately, as it always did here), expressed as a
single-use local executor.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.montecarlo.executors.base import (
    WorkerCrashError,
    _summarise_args,
    _timed_shard,
    pool_context,
)
from repro.montecarlo.executors.localprocess import LocalProcessExecutor

__all__ = ["pool_context", "run_sharded", "WorkerCrashError"]


def run_sharded(function: Callable[..., Any],
                shard_args: Sequence[Tuple],
                max_workers: int,
                on_result: Optional[Callable[[int, Any], None]] = None
                ) -> List[Any]:
    """Run ``function(*args)`` for every shard across a process pool.

    Parameters
    ----------
    function:
        Picklable (module-level) worker entrypoint.
    shard_args:
        One argument tuple per shard, in shard-index order.
    max_workers:
        Process ceiling; the pool never holds more processes than
        shards.
    on_result:
        Optional ``(index, result)`` callback fired **while the pool is
        still running**, in shard-index order: shard ``i``'s callback
        fires as soon as shards ``0..i`` have all completed (later
        shards that finish early are buffered).  This is what streams
        a live progress tally during a long sharded sweep.  Not called
        for any shard at or after the first error — *first* by shard
        index, not by wall clock: shards below the lowest failing index
        still stream their callbacks even when a later shard happened
        to crash before they finished, so the streamed prefix is
        exactly the prefix a fault-free run would have streamed.

    Returns
    -------
    The per-shard results **in shard order**, regardless of completion
    order.  If any shard raises, every not-yet-started shard is
    cancelled and the exception of the lowest-indexed failing shard is
    re-raised (sibling failures are suppressed deterministically).  A
    worker that dies without raising — ``os._exit``, a segfault, the
    OOM killer — breaks the whole pool; that surfaces as a
    :class:`WorkerCrashError` naming the lowest-indexed shard the
    crash took down and its argument summary, instead of the bare
    unattributed ``BrokenProcessPool``.
    """
    executor = LocalProcessExecutor(max_workers, max_shard_retries=0)
    return executor.run_sharded(function, shard_args, on_result=on_result)
