"""Shared process-pool harness for the sharded dispatch tiers.

Both sharded backends — scalar-engine trial shards and batchsim trial
chunks — need the same three guarantees from a process pool, which the
bare :class:`~concurrent.futures.ProcessPoolExecutor` idiom (submit
everything, collect ``future.result()`` in a loop) does not give:

* an **explicit start method**, so worker behaviour does not change
  under the platform (or Python-version) default — fork on Linux
  (cheap: workers inherit the parent's imported numpy and warmed
  caches), spawn elsewhere;
* **deterministic shard→result ordering**: results come back indexed
  by shard, never by completion order, so merged indicator vectors are
  a pure function of the root seed;
* **first-exception propagation with cancellation**: one raising shard
  cancels every shard that has not started instead of letting siblings
  burn CPU, and the error that surfaces is the one from the
  *lowest-indexed* failing shard — reproducible no matter which worker
  happened to crash first.

Every completed shard additionally reports its execution time and
queue wait to the process-wide metrics registry (:mod:`repro.obs`;
series ``mc.pool.shards`` / ``mc.pool.shard.seconds`` /
``mc.pool.shard.queue_seconds``, labelled by worker entrypoint), so
shard skew across a sharded sweep is visible without touching the
result contract — callers still receive exactly the per-shard values
their worker function returned.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.obs import get_registry

__all__ = ["pool_context", "run_sharded", "WorkerCrashError"]


class WorkerCrashError(RuntimeError):
    """A pool worker died abruptly (segfault, ``os._exit``, OOM kill).

    The bare :class:`~concurrent.futures.process.BrokenProcessPool`
    carries no shard attribution — it surfaces on whichever future the
    completion loop happened to reach first.  This wrapper names the
    lowest-indexed shard the crash took down and summarises its
    arguments, so a reproduction starts from the right shard instead
    of a random one.
    """


def _summarise_args(args: Tuple, limit: int = 200) -> str:
    """Truncated ``repr`` of a shard's argument tuple for error text."""
    text = repr(args)
    if len(text) > limit:
        text = text[:limit] + "...<truncated>"
    return text


def _timed_shard(function: Callable[..., Any], args: Tuple) -> Tuple[Tuple[float, float], Any]:
    """Worker-side wrapper: run the shard and report its own clock.

    Returns ``((started, seconds), result)`` where ``started`` is the
    worker's ``time.monotonic()`` at shard entry.  ``time.monotonic``
    is system-wide on Linux (CLOCK_MONOTONIC) and macOS
    (mach_absolute_time), so the parent can subtract its submit stamp
    from the worker's start stamp to estimate per-shard **queue wait**
    — how long the shard sat behind siblings before a process picked
    it up.  Top-level so the spawn start method can pickle it.
    """
    started = time.monotonic()
    result = function(*args)
    return (started, time.monotonic() - started), result


def _record_shard(function: Callable[..., Any], submitted: float,
                  timing: Tuple[float, float]) -> None:
    """Report one completed shard's duration and queue wait.

    Three series, labelled by the worker entrypoint so engine shards
    and batchsim chunks stay distinguishable: the shard counter
    ``mc.pool.shards``, the execution-latency histogram
    ``mc.pool.shard.seconds`` (whose spread across a run *is* the
    shard-skew signal), and the queue-wait histogram
    ``mc.pool.shard.queue_seconds``.
    """
    started, seconds = timing
    name = getattr(function, "__name__", "shard")
    registry = get_registry()
    registry.counter("mc.pool.shards", function=name).inc()
    registry.histogram("mc.pool.shard.seconds", function=name).observe(seconds)
    registry.histogram("mc.pool.shard.queue_seconds", function=name).observe(
        max(0.0, started - submitted)
    )


def pool_context():
    """The multiprocessing context every sharded tier uses.

    Fork on Linux: workers reuse the parent's imports and page-shared
    topology caches, which keeps per-shard startup in the
    milliseconds.  Spawn everywhere else — on macOS fork is offered
    but unsafe (forked children can abort inside the Objective-C
    runtime and Accelerate-backed numpy, which is why CPython moved
    the platform default to spawn).  Pinning the method explicitly
    keeps sharded runs identical across Python versions instead of
    tracking the interpreter's default (3.14 moves Linux to
    forkserver).
    """
    return multiprocessing.get_context(
        "fork" if sys.platform == "linux" else "spawn"
    )


def run_sharded(function: Callable[..., Any],
                shard_args: Sequence[Tuple],
                max_workers: int,
                on_result: Optional[Callable[[int, Any], None]] = None
                ) -> List[Any]:
    """Run ``function(*args)`` for every shard across a process pool.

    Parameters
    ----------
    function:
        Picklable (module-level) worker entrypoint.
    shard_args:
        One argument tuple per shard, in shard-index order.
    max_workers:
        Process ceiling; the pool never holds more processes than
        shards.
    on_result:
        Optional ``(index, result)`` callback fired **while the pool is
        still running**, in shard-index order: shard ``i``'s callback
        fires as soon as shards ``0..i`` have all completed (later
        shards that finish early are buffered).  This is what streams
        a live progress tally during a long sharded sweep.  Not called
        for any shard at or after the first error — *first* by shard
        index, not by wall clock: shards below the lowest failing index
        still stream their callbacks even when a later shard happened
        to crash before they finished, so the streamed prefix is
        exactly the prefix a fault-free run would have streamed.

    Returns
    -------
    The per-shard results **in shard order**, regardless of completion
    order.  If any shard raises, every not-yet-started shard is
    cancelled and the exception of the lowest-indexed failing shard is
    re-raised (sibling failures are suppressed deterministically).  A
    worker that dies without raising — ``os._exit``, a segfault, the
    OOM killer — breaks the whole pool; that surfaces as a
    :class:`WorkerCrashError` naming the lowest-indexed shard the
    crash took down and its argument summary, instead of the bare
    unattributed ``BrokenProcessPool``.
    """
    results: List[Any] = [None] * len(shard_args)
    errors = {}
    ready = {}
    next_in_order = 0
    workers = min(max_workers, len(shard_args))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=pool_context()) as pool:
        submitted = time.monotonic()
        futures = {
            pool.submit(_timed_shard, function, tuple(args)): index
            for index, args in enumerate(shard_args)
        }
        for future in as_completed(futures):
            if future.cancelled():
                continue
            index = futures[future]
            try:
                timing, results[index] = future.result()
                _record_shard(function, submitted, timing)
            except Exception as error:
                if not errors:
                    # One sweep on the *first* error only: a broken
                    # pool fails every still-pending future, and
                    # re-sweeping per failure would make the teardown
                    # O(shards^2) in cancel calls.
                    for sibling in futures:
                        sibling.cancel()
                errors[index] = error
                continue
            if on_result is not None:
                ready[index] = results[index]
                # Stream strictly below the lowest failing shard index
                # (the documented contract): a later shard crashing
                # first must not suppress the callbacks of
                # already-running lower shards.  Safe even though
                # min(errors) can drop as more errors land — callbacks
                # fire in index order, so every index already streamed
                # is backed by a completed (never-failing) shard.
                while next_in_order in ready and (
                        not errors or next_in_order < min(errors)):
                    on_result(next_in_order, ready.pop(next_in_order))
                    next_in_order += 1
    if errors:
        lowest = min(errors)
        error = errors[lowest]
        if isinstance(error, BrokenExecutor):
            raise WorkerCrashError(
                f"worker process died abruptly (killed / os._exit / "
                f"segfault) while the pool was running shard {lowest} of "
                f"{len(shard_args)}; shard args: "
                f"{_summarise_args(tuple(shard_args[lowest]))}"
            ) from error
        raise error
    return results
