"""The vectorised multi-trial execution engine (batchsim tier).

Where the scalar :class:`~repro.engine.simulator.Execution` interprets
one trial round by round, this engine advances a whole batch of ``B``
trials together: per round it takes the program's ``(B, n)`` intent
codes, applies the failure model's pre-sampled ``(B, n)`` faulty masks
through its vectorised ``apply_batch`` hook, delivers through
:func:`~repro.engine.simulator.deliver_radio_batch` /
:func:`~repro.engine.simulator.deliver_mp_batch`, and hands the
deliveries back to the program.  Nothing touches Python-level per-node
state, so the per-trial cost collapses to a handful of numpy
operations per round.

Stream contract (what makes the tier safe to auto-dispatch): trial
``i`` consumes the stream ``root.child("mc", i)`` — the
:mod:`repro.montecarlo` per-trial convention — and the failure model's
``sample_failures_batch`` drains each trial's ``child("faults")``
stream exactly as the scalar engine's round-by-round ``sample_faulty``
calls would.  The plain oblivious adversaries consume no randomness at
all, and the randomised slowing reduction *replays* its coin tosses
from each trial's ``child("adversary")`` stream
(:meth:`~repro.failures.adversaries.SlowingAdversary.
thin_faulty_batch`), so the batched per-trial success indicators are
**bit-identical** to the scalar engine's on matched streams
(property-tested in ``tests/test_batchsim.py``), for any worker count
and any chunk size.

Eligibility (:func:`batch_execution` returns ``None`` otherwise):

* the failure model is history-oblivious (``requires_history`` False)
  and answers ``True`` from ``supports_batch(model)`` — fault-free,
  omission (scalar ``p`` or per-node ``p_v``), and malicious models
  whose adversary *certifies* the enforced restriction level for
  batched execution (``Adversary.batch_restrictions``; see
  :mod:`repro.failures.adversaries` — incl. LIMITED/FLIP levels and
  slowing wrappers around randomness-free inners);
* the scenario's flip-closed payload alphabet passes the model's
  ``supports_batch_payloads`` check (the FLIP restriction demands an
  all-bit alphabet, matching the scalar engine's enforcement);
* the algorithm implements the batch interface — ``batch_payloads()``
  (its payload alphabet) and ``batch_program(codec)`` (its
  :class:`~repro.batchsim.programs.BatchProgram`), both returning
  non-``None`` — which every algorithm family in the library now does;
* the run estimates the standard broadcast-success event (the
  execution metadata carries a hashable ``source_message``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from repro._validation import check_positive_int
from repro.batchsim.codec import SILENCE, PayloadCodec
from repro.batchsim.programs import BatchProgram
from repro.engine.protocol import MESSAGE_PASSING, Algorithm
from repro.engine.simulator import deliver_mp_batch, deliver_radio_batch
from repro.failures.base import FailureModel
from repro.rng import RngStream, derive_seed

__all__ = ["BatchExecution", "batch_execution", "run_batch_shard",
           "supports_batchsim"]

#: Trials advanced together per chunk: large enough to amortise numpy
#: call overhead, small enough to keep the (chunk, rounds, n) fault
#: masks and (chunk, n, K) vote counters cache-friendly.
DEFAULT_CHUNK = 512


class BatchExecution:
    """A dispatchable batched scenario: algorithm + failures + program.

    Build through :func:`batch_execution`, which performs the
    eligibility checks; :meth:`run` then produces per-trial success
    indicators bit-identical to scalar engine executions on the
    per-trial streams ``root.child("mc", i)``.
    """

    def __init__(self, algorithm: Algorithm, failure_model: FailureModel,
                 program: BatchProgram, codec: PayloadCodec,
                 expected_code: Optional[int]):
        self._algorithm = algorithm
        self._failure_model = failure_model
        self._program = program
        self._codec = codec
        self._expected_code = expected_code

    @property
    def algorithm(self) -> Algorithm:
        """The algorithm under test."""
        return self._algorithm

    @property
    def codec(self) -> PayloadCodec:
        """The scenario's payload codec."""
        return self._codec

    def run(self, trials: int, root_seed: int,
            chunk: int = DEFAULT_CHUNK) -> np.ndarray:
        """Success indicators of trials ``0..trials-1`` under ``root_seed``.

        The result is a pure function of the root seed: chunking is
        invisible because every trial draws only from its own
        ``root.child("mc", i)`` stream.
        """
        trials = check_positive_int(trials, "trials")
        return self.run_range(0, trials, root_seed, chunk=chunk)

    def run_range(self, start: int, stop: int, root_seed: int,
                  chunk: int = DEFAULT_CHUNK) -> np.ndarray:
        """Success indicators of the trial subrange ``start..stop-1``.

        Trial indices are *absolute*: trial ``i`` draws from
        ``root.child("mc", i)`` whatever the range bounds, so a run
        partitioned into contiguous ranges — the process-sharding path
        — concatenates to exactly :meth:`run`'s vector.
        """
        chunk = check_positive_int(chunk, "chunk")
        if start < 0 or stop <= start:
            raise ValueError(
                f"need 0 <= start < stop, got start={start}, stop={stop}"
            )
        indicators = np.empty(stop - start, dtype=bool)
        if self._expected_code is None:
            # The expected message lies outside the payload alphabet,
            # so no trial can output it anywhere (the scalar engine's
            # outputs are drawn from the same alphabet).
            indicators[:] = False
            return indicators
        for lo in range(start, stop, chunk):
            hi = min(lo + chunk, stop)
            indicators[lo - start:hi - start] = self._run_chunk(
                root_seed, lo, hi
            )
        return indicators

    def _run_chunk(self, root_seed: int, start: int, stop: int) -> np.ndarray:
        algorithm = self._algorithm
        topology = algorithm.topology
        rounds = algorithm.rounds
        program = self._program
        streams = [
            RngStream(derive_seed(root_seed, "mc", index), ("mc", index))
            for index in range(start, stop)
        ]
        masks = self._failure_model.sample_failures_batch(
            streams, rounds, topology.order
        )
        program.reset(stop - start)
        radio = algorithm.model != MESSAGE_PASSING
        targets = None if radio else program.mp_targets()
        for round_index in range(rounds):
            intents = program.intent_codes(round_index)
            actual = self._failure_model.apply_batch(
                round_index, masks[:, round_index, :], intents, self._codec,
                algorithm.model,
            )
            if radio:
                heard_from = deliver_radio_batch(topology, actual != SILENCE)
                received = np.where(
                    heard_from >= 0,
                    np.take_along_axis(
                        actual, np.maximum(heard_from, 0), axis=1
                    ),
                    np.int64(SILENCE),
                )
            else:
                received = deliver_mp_batch(topology, actual, targets)
            program.observe(round_index, received)
        outputs = program.output_codes()
        return (outputs == self._expected_code).all(axis=1)


def batch_execution(algorithm: Algorithm, failure_model: FailureModel,
                    metadata: Optional[Dict[str, Any]] = None
                    ) -> Optional[BatchExecution]:
    """Build the batched execution for a scenario, or ``None``.

    ``None`` means the scenario is outside the batchsim tier's
    eligibility envelope (see the module docstring) and the caller
    should fall back to scalar engine trials.
    """
    if failure_model.requires_history:
        return None
    if not failure_model.supports_batch(algorithm.model):
        return None
    payload_hook = getattr(algorithm, "batch_payloads", None)
    program_hook = getattr(algorithm, "batch_program", None)
    if not callable(payload_hook) or not callable(program_hook):
        return None
    payloads = payload_hook()
    if payloads is None:
        return None
    if metadata is None:
        metadata_hook = getattr(algorithm, "metadata", None)
        metadata = metadata_hook() if callable(metadata_hook) else {}
    if "source_message" not in metadata:
        return None
    try:
        codec = PayloadCodec.for_scenario(
            payloads, failure_model.batch_payloads()
        )
        expected_code = codec.try_code(metadata["source_message"])
    except (TypeError, ValueError):
        return None  # unhashable payloads: leave the scenario to the engine
    if not failure_model.supports_batch_payloads(codec.payloads):
        return None
    program = program_hook(codec)
    if program is None:
        return None
    return BatchExecution(
        algorithm, failure_model, program, codec, expected_code
    )


def run_batch_shard(factory: Callable[[], Algorithm],
                    failure_model: FailureModel,
                    metadata: Optional[Dict[str, Any]],
                    root_seed: int, start: int, stop: int) -> np.ndarray:
    """Picklable process-shard entrypoint: trials ``start..stop-1``.

    The worker rebuilds the scenario from the (picklable) factory and
    re-runs the eligibility probe, then executes its contiguous trial
    range.  Because every trial derives its stream from
    ``(root_seed, index)`` alone, the shard's indicators are exactly
    the corresponding slice of a single-process :meth:`BatchExecution.
    run` — the parent merges shards in index order and gets a
    bit-identical vector for any worker count.
    """
    execution = batch_execution(factory(), failure_model, metadata=metadata)
    if execution is None:
        # The parent only shards scenarios its own probe accepted; a
        # worker-side rejection means the factory is not a pure
        # scenario description (e.g. it randomises eligibility).
        raise RuntimeError(
            "scenario failed the batchsim eligibility probe inside a "
            "worker process although the parent accepted it"
        )
    return execution.run_range(start, stop, root_seed)


def supports_batchsim(algorithm: Algorithm,
                      failure_model: FailureModel) -> bool:
    """Whether the batchsim tier can execute this scenario exactly."""
    return batch_execution(algorithm, failure_model) is not None
