"""Vectorised multi-trial execution engine (the batchsim tier).

Executes ``B`` Monte-Carlo trials of one algorithm/topology/failure
scenario simultaneously on stacked ``(B, n)`` arrays — the middle tier
of the :mod:`repro.montecarlo` dispatch order ``fastsim sampler →
batchsim → scalar engine``: closed-form samplers stay fastest where a
law is proven, batchsim makes every *other* history-oblivious scenario
fast by default, and the scalar engine remains the semantic ground
truth the batched indicators are pinned against bit for bit.
"""

from repro.batchsim.codec import SILENCE, PayloadCodec
from repro.batchsim.engine import (
    BatchExecution,
    batch_execution,
    supports_batchsim,
)
from repro.batchsim.programs import (
    ADOPT_FIRST,
    ADOPT_MAJORITY,
    BatchProgram,
    HelloProgram,
    LiftEntry,
    PlanLift,
    ScheduleLift,
    WindowedProgram,
    lift_flooding,
    lift_layered_schedule,
    lift_radio_repeat,
    lift_slot_schedule,
    lift_tree_phase,
    registered_lifts,
)

__all__ = [
    "SILENCE",
    "PayloadCodec",
    "BatchExecution",
    "batch_execution",
    "supports_batchsim",
    "BatchProgram",
    "ScheduleLift",
    "HelloProgram",
    "WindowedProgram",
    "PlanLift",
    "LiftEntry",
    "registered_lifts",
    "ADOPT_FIRST",
    "ADOPT_MAJORITY",
    "lift_tree_phase",
    "lift_radio_repeat",
    "lift_flooding",
    "lift_layered_schedule",
    "lift_slot_schedule",
]
