"""Payload codec: hashable payloads <-> small integer codes.

The batched engine stores every per-(trial, node) value — intents,
actual transmissions, deliveries, adopted messages, votes — as an
``int64`` code so whole trial batches move through numpy in one
operation.  Code ``-1`` (:data:`SILENCE`) is reserved for "no payload"
and mirrors the scalar engine's ``None``; payload codes are
``0..size-1`` in registration order.

The alphabet of a scenario is closed under :func:`~repro.failures.
adversaries.flip_bit` so bit-flipping adversaries are a table lookup
(:meth:`PayloadCodec.flip_codes`).  Payload equality follows Python
``==`` semantics exactly (the code table is a dict, so ``1``, ``True``
and ``1.0`` share a code just as they satisfy the scalar engine's
output comparison).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.failures.adversaries import flip_bit

__all__ = ["SILENCE", "PayloadCodec"]

SILENCE = -1
"""The reserved code for "no payload" (the scalar engine's ``None``)."""


class PayloadCodec:
    """Bijection between a finite payload alphabet and ``0..K-1`` codes.

    Parameters
    ----------
    payloads:
        The alphabet, in code order.  Duplicates (under ``==``) collapse
        onto the first occurrence; ``None`` is rejected (silence is not
        a payload).  Every payload must be hashable, and the alphabet
        must be closed under :func:`~repro.failures.adversaries.
        flip_bit` (so the flip table is total) — build through
        :meth:`for_scenario` to get the closure added automatically.
    """

    __slots__ = ("_payloads", "_codes", "_flip_table")

    def __init__(self, payloads: Iterable[Any]):
        self._payloads: List[Any] = []
        self._codes: Dict[Any, int] = {}
        for payload in payloads:
            if payload is None:
                raise ValueError("None is silence, not a payload")
            if payload not in self._codes:
                self._codes[payload] = len(self._payloads)
                self._payloads.append(payload)
        if not self._payloads:
            raise ValueError("payload alphabet must not be empty")
        # flip table padded with a trailing SILENCE so that indexing
        # with code -1 (numpy negative indexing hits the last slot)
        # maps silence to silence in the same lookup.
        table = np.empty(len(self._payloads) + 1, dtype=np.int64)
        for code, payload in enumerate(self._payloads):
            flipped = flip_bit(payload)
            if flipped not in self._codes:
                raise ValueError(
                    f"alphabet is not closed under flip_bit: "
                    f"{payload!r} flips to {flipped!r}, which is not a "
                    f"payload; build through PayloadCodec.for_scenario"
                )
            table[code] = self._codes[flipped]
        table[-1] = SILENCE
        self._flip_table = table

    @classmethod
    def for_scenario(cls, algorithm_payloads: Iterable[Any],
                     failure_payloads: Iterable[Any] = ()) -> "PayloadCodec":
        """Build the closed alphabet of one batched scenario.

        Collects the algorithm's payloads (default + source message),
        the failure model's extras (adversary noise / garbage values)
        and the bit-flips of all of them, so every transformation a
        supported oblivious adversary can apply stays inside the
        alphabet.
        """
        base = [*algorithm_payloads, *failure_payloads]
        return cls(base + [flip_bit(payload) for payload in base])

    @property
    def size(self) -> int:
        """Number of distinct payloads ``K``."""
        return len(self._payloads)

    @property
    def payloads(self) -> List[Any]:
        """The alphabet in code order (copy)."""
        return list(self._payloads)

    def code_of(self, payload: Any) -> int:
        """The code of ``payload``; raises ``KeyError`` when unknown."""
        return self._codes[payload]

    def try_code(self, payload: Any) -> Optional[int]:
        """The code of ``payload``, or ``None`` when outside the alphabet."""
        try:
            return self._codes.get(payload)
        except TypeError:  # unhashable payload
            return None

    def decode(self, code: int) -> Any:
        """The payload of ``code`` (``None`` for :data:`SILENCE`)."""
        if code == SILENCE:
            return None
        return self._payloads[code]

    def flip_codes(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised bit flip: ``code -> code_of(flip_bit(payload))``.

        Non-bit payloads map to themselves (matching
        :func:`~repro.failures.adversaries.flip_bit`) and silence stays
        silence.
        """
        return self._flip_table[codes]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PayloadCodec({self._payloads!r})"
