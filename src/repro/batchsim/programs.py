"""Batched protocol programs: whole trial batches stepped per round.

The scalar engine interprets one :class:`~repro.engine.protocol.
Protocol` instance per node per trial; this module replaces the
per-trial interpretation with one *program* object per scenario that
advances ``B`` trials at once on ``(B, n)`` code arrays.

The workhorse is :class:`ScheduleLift` — the adapter the batchsim
design builds on: every natively batchable algorithm in the library is
a *relay* protocol whose transmission timetable is deterministic (a
pure function of the round index, never of what was delivered), so the
schedule can be replayed **once** into ``(rounds, n)`` boolean masks
and broadcast across the whole trial batch.  What varies per trial is
only each node's adopted value, which the lift tracks as a code array
under one of two adoption rules:

* ``first`` — adopt the first payload heard inside the listening
  schedule (Simple-Omission, flooding, the layered schedule,
  Omission-Radio);
* ``majority`` — collect every payload heard inside the listening
  schedule and relay/output the majority, default on a tie
  (Simple-Malicious, Malicious-Radio).

The family-specific :func:`lift_tree_phase` / :func:`lift_radio_repeat`
/ :func:`lift_flooding` / :func:`lift_layered_schedule` /
:func:`lift_slot_schedule` builders do the one-off schedule replay;
algorithms expose them through their ``batch_program(codec)`` hook (see
:mod:`repro.batchsim.engine` for the eligibility contract).

Three protocol families fall outside the adopt-a-value relay shape and
get dedicated programs instead of a :class:`ScheduleLift`:

* :class:`HelloProgram` — the Section 2.2.2 timing channel decodes
  *when* transmissions arrive, not what they carry;
* :class:`WindowedProgram` — the windowed Simple-Malicious variant's
  transmission timetable depends on when each node's sliding window
  accepts, so there is no schedule to replay up front;
* :class:`PlanLift` — Kučera compiled plans keep one bit per
  repetition-execution *context* per node and fold them with scheduled
  copy/vote directives.

Each program mirrors its scalar protocol's semantics *exactly* — same
listening windows, same tie handling, same uninformed-transmitter
behaviour — which is what makes batched per-trial indicators
bit-identical to the scalar engine on matched streams (property-tested
in ``tests/test_batchsim.py``).  Every lift/program family registers a
:class:`LiftEntry` so the architecture docs and the
``python -m repro.experiments describe`` registry dump can enumerate
the coverage (pinned by ``tests/test_docs_sync.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.batchsim.codec import SILENCE, PayloadCodec
from repro.engine.protocol import MESSAGE_PASSING

__all__ = [
    "ADOPT_FIRST",
    "ADOPT_MAJORITY",
    "BatchProgram",
    "ScheduleLift",
    "HelloProgram",
    "WindowedProgram",
    "PlanLift",
    "LiftEntry",
    "registered_lifts",
    "lift_tree_phase",
    "lift_radio_repeat",
    "lift_flooding",
    "lift_layered_schedule",
    "lift_slot_schedule",
]

ADOPT_FIRST = "first"
ADOPT_MAJORITY = "majority"


@dataclass(frozen=True)
class LiftEntry:
    """One documented batchsim lift/program family.

    ``name`` is the stable identifier the architecture docs and the
    ``describe`` registry dump must mention; ``description`` is the
    one-line coverage summary shown there.
    """

    name: str
    description: str


_LIFTS: Dict[str, LiftEntry] = {}


def _register_lift(name: str, description: str) -> None:
    if name in _LIFTS:
        raise ValueError(f"duplicate lift name {name!r}")
    _LIFTS[name] = LiftEntry(name=name, description=description)


def registered_lifts() -> List[LiftEntry]:
    """All batchsim lift families, in registration order."""
    return list(_LIFTS.values())


_register_lift(
    "tree-phase",
    "SimpleOmission (first-heard) / SimpleMalicious (majority) phase "
    "schedules, both models",
)
_register_lift(
    "radio-repeat",
    "RadioRepeat repeated base schedules, any/majority adoption (radio)",
)
_register_lift(
    "flooding",
    "FastFlooding tree relays, transmit-once-informed (message passing)",
)
_register_lift(
    "layered-schedule",
    "LayeredScheduleBroadcast explicit step lists on G(m) (radio)",
)
_register_lift(
    "slot-schedule",
    "Round-robin / prime-power label timetables, transmit-once-informed "
    "(radio)",
)
_register_lift(
    "hello",
    "Hello timing-channel decode on the 2-node graph, either model",
)
_register_lift(
    "windowed",
    "WindowedMalicious sliding-window acceptance relays (message passing)",
)
_register_lift(
    "kucera-plan",
    "Kučera compiled plans: per-context bits + copy/vote directives "
    "(message passing)",
)


class BatchProgram(ABC):
    """The vectorised counterpart of one scenario's per-node protocols.

    One program instance serves many chunks: :meth:`reset` reallocates
    the per-trial state, then the engine alternates
    :meth:`intent_codes` / :meth:`observe` for every round and reads
    :meth:`output_codes` at the end.
    """

    #: Communication model the program targets (engine picks delivery).
    model: str

    @abstractmethod
    def reset(self, batch: int) -> None:
        """Initialise state for a fresh batch of ``batch`` trials."""

    @abstractmethod
    def intent_codes(self, round_index: int) -> np.ndarray:
        """``(B, n)`` transmission intents (codes, ``SILENCE`` = quiet)."""

    def mp_targets(self) -> Optional[np.ndarray]:
        """Static per-slot target mask for message-passing delivery.

        Aligned with the receiver CSR of
        :func:`~repro.engine.simulator.deliver_mp_batch`: entry ``j``
        says whether the sender of inbox slot ``j`` addresses the
        slot's owner.  ``None`` means every sender addresses all of its
        neighbours.  Radio programs never consult this.
        """
        return None

    @abstractmethod
    def observe(self, round_index: int, received: np.ndarray) -> None:
        """Fold one round's deliveries into the per-trial state.

        ``received`` is the ``(B, n)`` heard-code array in the radio
        model, or the ``(B, E)`` inbox-code array of
        :func:`~repro.engine.simulator.deliver_mp_batch` in message
        passing.
        """

    @abstractmethod
    def output_codes(self) -> np.ndarray:
        """``(B, n)`` final outputs (the scalar protocols' ``output()``)."""


class WatchViews:
    """Message-passing gather views for watched-parent listeners.

    Resolves each listener's watched sender into an inbox slot of
    :func:`~repro.engine.simulator.deliver_mp_batch`: slot
    ``indptr[v] + k`` of the delivery inbox carries what neighbour
    ``indices[indptr[v] + k]`` sent to ``v``; the watch slot of ``v``
    is the one whose sender is ``watch[v]``.  The static target mask
    marks, per slot, whether the slot's sender addresses the owner —
    which for the tree relays is exactly "the owner watches the
    sender" (parents transmit to all of their children at once).
    """

    __slots__ = ("_order", "_slots", "_mask", "targets")

    def __init__(self, topology, watch: np.ndarray):
        watch = np.asarray(watch, dtype=np.int64)
        indptr, indices = topology.csr_neighbors()
        owners = np.repeat(np.arange(topology.order), np.diff(indptr))
        self.targets: np.ndarray = watch[owners] == indices
        slots = np.zeros(topology.order, dtype=np.int64)
        mask = np.zeros(topology.order, dtype=bool)
        for node in range(topology.order):
            if watch[node] < 0:
                continue
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            matches = np.nonzero(indices[lo:hi] == watch[node])[0]
            if matches.size:
                slots[node] = lo + int(matches[0])
                mask[node] = True
        self._order = topology.order
        self._slots = slots
        self._mask = mask

    def gather(self, received: np.ndarray) -> np.ndarray:
        """``(B, E)`` inbox codes -> ``(B, n)`` watched-sender codes.

        Nodes watching nobody (the source, disconnected nodes) hear
        silence.
        """
        if received.shape[1] == 0:  # edgeless graph: nothing arrives
            return np.full((received.shape[0], self._order), SILENCE,
                           dtype=np.int64)
        heard = received[:, self._slots]
        heard[:, ~self._mask] = SILENCE
        return heard


class ScheduleLift(BatchProgram):
    """Generic relay program over a replayed deterministic schedule.

    Parameters
    ----------
    model:
        Communication model (fixes the delivery shape).
    codec:
        The scenario's payload codec.
    transmit_schedule:
        ``(rounds, n)`` bool — which nodes are scheduled to transmit.
    listen_schedule:
        ``(rounds, n)`` bool — which nodes accept deliveries when.
    initial_codes:
        ``(n,)`` codes; non-``SILENCE`` entries are initially-informed
        nodes (the source's ``Ms``) whose value never changes.
    default_code:
        The fallback payload code (the paper's ``0``).
    adoption:
        :data:`ADOPT_FIRST` or :data:`ADOPT_MAJORITY`.
    requires_message:
        When True a scheduled node stays silent until informed
        (flooding); when False it transmits its current value, i.e. the
        default while uninformed (the tree-phase/layered pessimistic
        reading).
    watch:
        Message passing only: ``(n,)`` node each listener accepts
        payloads from (its tree parent), ``-1`` for nobody.
    topology:
        Required with ``watch`` to resolve inbox slots.
    """

    def __init__(self, *, model: str, codec: PayloadCodec,
                 transmit_schedule: np.ndarray, listen_schedule: np.ndarray,
                 initial_codes: np.ndarray, default_code: int,
                 adoption: str, requires_message: bool = False,
                 watch: Optional[np.ndarray] = None, topology=None):
        if adoption not in (ADOPT_FIRST, ADOPT_MAJORITY):
            raise ValueError(f"unknown adoption rule {adoption!r}")
        self.model = model
        self._codec = codec
        self._transmit = np.asarray(transmit_schedule, dtype=bool)
        self._listen = np.asarray(listen_schedule, dtype=bool)
        if self._transmit.shape != self._listen.shape:
            raise ValueError("transmit and listen schedules disagree in shape")
        self._order = self._transmit.shape[1]
        self._initial = np.asarray(initial_codes, dtype=np.int64)
        self._default = int(default_code)
        self._adoption = adoption
        self._requires_message = bool(requires_message)
        self._views: Optional[WatchViews] = None
        if model == MESSAGE_PASSING:
            if watch is None or topology is None:
                raise ValueError(
                    "message-passing lifts need a watch map and topology"
                )
            self._views = WatchViews(topology, watch)
        # Per-batch state, allocated by reset().
        self._batch = 0
        self._adopted: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None

    @property
    def rounds(self) -> int:
        """Length of the replayed schedule."""
        return self._transmit.shape[0]

    @property
    def order(self) -> int:
        """Number of nodes ``n``."""
        return self._order

    def mp_targets(self) -> Optional[np.ndarray]:
        return None if self._views is None else self._views.targets

    def reset(self, batch: int) -> None:
        self._batch = int(batch)
        self._adopted = np.broadcast_to(
            self._initial, (self._batch, self._order)
        ).copy()
        if self._adoption == ADOPT_MAJORITY:
            self._counts = np.zeros(
                (self._batch, self._order, self._codec.size), dtype=np.int64
            )

    def _values(self) -> np.ndarray:
        """``(B, n)`` current relay values (the scalar ``output()``)."""
        if self._adoption == ADOPT_FIRST:
            return np.where(self._adopted != SILENCE, self._adopted,
                            np.int64(self._default))
        # Majority with ties (and no votes) falling to the default;
        # initially-informed nodes always relay their own message.
        best = self._counts.max(axis=2)
        tied = (self._counts == best[..., np.newaxis]).sum(axis=2)
        decided = np.where(
            (best > 0) & (tied == 1),
            self._counts.argmax(axis=2), np.int64(self._default),
        )
        return np.where(self._initial != SILENCE, self._initial, decided)

    def intent_codes(self, round_index: int) -> np.ndarray:
        scheduled = self._transmit[round_index]
        values = self._values()
        intents = np.where(scheduled, values, np.int64(SILENCE))
        if self._requires_message:
            informed = (self._adopted != SILENCE) | (self._initial != SILENCE)
            intents = np.where(informed, intents, np.int64(SILENCE))
        return intents

    def observe(self, round_index: int, received: np.ndarray) -> None:
        if self.model == MESSAGE_PASSING:
            heard = self._views.gather(received)
        else:
            heard = received
        listening = self._listen[round_index]
        if self._adoption == ADOPT_FIRST:
            adopt = listening & (heard != SILENCE) & (self._adopted == SILENCE)
            np.copyto(self._adopted, heard, where=adopt)
            return
        votes = listening & (heard != SILENCE)
        rows, nodes = np.nonzero(votes)
        # One heard payload per (trial, node) per round, so the index
        # triples are unique and a fancy-indexed increment is exact.
        self._counts[rows, nodes, heard[rows, nodes]] += 1

    def output_codes(self) -> np.ndarray:
        return self._values()


def _initial_codes(order: int, source: int, message_code: int) -> np.ndarray:
    codes = np.full(order, SILENCE, dtype=np.int64)
    codes[source] = message_code
    return codes


def lift_tree_phase(algorithm, codec: PayloadCodec,
                    adoption: str) -> ScheduleLift:
    """Replay a :class:`~repro.core.tree_phase.PhaseSchedule` timetable.

    Covers Simple-Omission (``first``) and Simple-Malicious
    (``majority``) in both models: node ``v_i`` transmits its current
    value throughout its own phase (message passing: only to its tree
    children, and not at all when it has none) and listens throughout
    its parent's phase.
    """
    schedule = algorithm.schedule
    tree = algorithm.tree
    order = algorithm.topology.order
    rounds = schedule.total_rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    listen = np.zeros((rounds, order), dtype=bool)
    watch = np.full(order, -1, dtype=np.int64)
    for node in range(order):
        start, end = schedule.window_of(node)
        transmit[start:end, node] = True
        if algorithm.model == MESSAGE_PASSING and not tree.children(node):
            transmit[:, node] = False  # leaves have nobody to address
        window = schedule.listening_window(node)
        if window is not None:
            listen[window[0]:window[1], node] = True
        parent = tree.parent[node]
        if parent is not None:
            watch[node] = parent
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default), adoption=adoption,
        watch=watch if algorithm.model == MESSAGE_PASSING else None,
        topology=algorithm.topology,
    )


def lift_radio_repeat(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay a :class:`~repro.core.radio_repeat.RadioRepeat` timetable.

    Series ``s`` of the repeated base schedule occupies rounds
    ``[s·m, (s+1)·m)``; its transmitters relay their current value and
    each node listens exactly during the series in which the fault-free
    schedule informs it (the source listens never).
    """
    from repro.core.radio_repeat import ADOPT_ANY

    base = algorithm.base_schedule
    order = algorithm.topology.order
    m = algorithm.phase_length
    rounds = algorithm.rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    listen = np.zeros((rounds, order), dtype=bool)
    for series in range(base.length):
        window = slice(series * m, (series + 1) * m)
        for node in base.transmitters(series):
            transmit[window, node] = True
    for node in range(order):
        series = algorithm.listening_series(node)
        if series >= 0:
            listen[series * m:(series + 1) * m, node] = True
    adoption = ADOPT_FIRST if algorithm.rule == ADOPT_ANY else ADOPT_MAJORITY
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default), adoption=adoption,
    )


def lift_flooding(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay :class:`~repro.core.flooding.FastFlooding` (Theorem 3.1).

    Every node with tree children re-sends its adopted message to them
    in every round — but only once informed — and every non-root node
    listens to its tree parent throughout.
    """
    order = algorithm.topology.order
    rounds = algorithm.rounds
    tree = algorithm.tree
    has_children = np.array(
        [bool(tree.children(node)) for node in range(order)], dtype=bool
    )
    transmit = np.broadcast_to(has_children, (rounds, order)).copy()
    watch = np.array(
        [-1 if tree.parent[node] is None else tree.parent[node]
         for node in range(order)],
        dtype=np.int64,
    )
    listen = np.broadcast_to(watch >= 0, (rounds, order)).copy()
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default),
        adoption=ADOPT_FIRST, requires_message=True,
        watch=watch, topology=algorithm.topology,
    )


def lift_layered_schedule(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay a :class:`~repro.radio.layered_broadcast.
    LayeredScheduleBroadcast` step list.

    The source transmits alone for ``source_steps`` rounds, then round
    ``t`` activates the listed layer-2 bit nodes — which occupy the
    medium with the default payload even while uninformed — and every
    node adopts the first payload it hears in any round.
    """
    order = algorithm.topology.order
    rounds = algorithm.rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    transmit[:algorithm.source_steps, algorithm.graph.source] = True
    for offset, step in enumerate(algorithm.step_nodes):
        for node in step:
            transmit[algorithm.source_steps + offset, node] = True
    listen = np.ones((rounds, order), dtype=bool)
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.graph.source,
            codec.code_of(algorithm.source_message),
        ),
        default_code=codec.code_of(algorithm.default), adoption=ADOPT_FIRST,
    )


def lift_slot_schedule(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay a label-timetable broadcast (Section 2.1 discussion).

    Covers :class:`~repro.core.labels.RoundRobinBroadcast` and
    :class:`~repro.core.labels.PrimeScheduleBroadcast` (any
    ``owns_slot`` predicate): an informed node transmits its adopted
    message in the rounds its label owns, an uninformed node keeps
    silent, and every node adopts the first payload heard in any round.
    """
    order = algorithm.topology.order
    rounds = algorithm.rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    for node in algorithm.topology.nodes:
        for round_index in range(rounds):
            if algorithm.owns_slot(node, round_index):
                transmit[round_index, node] = True
    listen = np.ones((rounds, order), dtype=bool)
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default),
        adoption=ADOPT_FIRST, requires_message=True,
    )


class HelloProgram(BatchProgram):
    """Batched :class:`~repro.core.hello.HelloProtocolAlgorithm`.

    The timing channel falls outside :class:`ScheduleLift`: the
    receiver decodes 0 iff transmissions arrived in two *consecutive*
    rounds, so the per-trial state is the previous round's audibility
    flag plus the decoded-zero latch — not an adopted value.  The
    sender's timetable itself is deterministic (all rounds for 0, odd
    rounds for 1) and replayed here exactly.
    """

    def __init__(self, algorithm, codec: PayloadCodec):
        from repro.core.hello import HELLO

        self.model = algorithm.model
        self._order = algorithm.topology.order
        self._sender = algorithm.sender
        self._receiver = algorithm.receiver
        self._message_zero = algorithm.source_message == 0
        self._hello_code = np.int64(codec.code_of(HELLO))
        self._message_code = np.int64(codec.code_of(algorithm.source_message))
        self._zero_code = np.int64(codec.code_of(0))
        self._one_code = np.int64(codec.code_of(1))
        self._views: Optional[WatchViews] = None
        if self.model == MESSAGE_PASSING:
            watch = np.full(self._order, -1, dtype=np.int64)
            watch[self._receiver] = self._sender
            self._views = WatchViews(algorithm.topology, watch)
        self._batch = 0
        self._heard_previous: Optional[np.ndarray] = None
        self._decoded_zero: Optional[np.ndarray] = None

    def mp_targets(self) -> Optional[np.ndarray]:
        return None if self._views is None else self._views.targets

    def reset(self, batch: int) -> None:
        self._batch = int(batch)
        self._heard_previous = np.zeros(self._batch, dtype=bool)
        self._decoded_zero = np.zeros(self._batch, dtype=bool)

    def intent_codes(self, round_index: int) -> np.ndarray:
        intents = np.full((self._batch, self._order), SILENCE, dtype=np.int64)
        if self._message_zero or round_index % 2 == 1:
            intents[:, self._sender] = self._hello_code
        return intents

    def observe(self, round_index: int, received: np.ndarray) -> None:
        if self.model == MESSAGE_PASSING:
            heard = self._views.gather(received)
        else:
            heard = received
        audible = heard[:, self._receiver] != SILENCE
        self._decoded_zero |= audible & self._heard_previous
        self._heard_previous = audible

    def output_codes(self) -> np.ndarray:
        outputs = np.empty((self._batch, self._order), dtype=np.int64)
        outputs[:, self._sender] = self._message_code
        outputs[:, self._receiver] = np.where(
            self._decoded_zero, self._zero_code, self._one_code
        )
        return outputs


class WindowedProgram(BatchProgram):
    """Batched :class:`~repro.core.windowed.WindowedMalicious`.

    No replayable timetable exists — a node starts its ``m``-round
    relay whenever its sliding window first shows ``⌈m/2⌉`` identical
    copies from its parent — so the program carries the window as a
    ``(B, n, m)`` circular code buffer.  The acceptance check needs
    only the payload heard *this* round: counts can never reach the
    threshold between checks without the newest arrival (evictions only
    decrease counts, and an earlier crossing would already have
    accepted), so the scalar protocol's in-order window scan reduces to
    one membership count of the current payload.
    """

    model = MESSAGE_PASSING

    def __init__(self, algorithm, codec: PayloadCodec):
        tree = algorithm.tree
        self._order = algorithm.topology.order
        self._window_length = algorithm.window_length
        self._threshold = algorithm.acceptance_threshold
        self._source = algorithm.source
        self._message_code = np.int64(codec.code_of(algorithm.source_message))
        self._default_code = np.int64(codec.code_of(algorithm.default))
        watch = np.array(
            [-1 if tree.parent[node] is None else tree.parent[node]
             for node in range(self._order)],
            dtype=np.int64,
        )
        self._views = WatchViews(algorithm.topology, watch)
        self._has_children = np.array(
            [bool(tree.children(node)) for node in range(self._order)],
            dtype=bool,
        )
        self._batch = 0
        self._accepted: Optional[np.ndarray] = None
        self._transmissions_left: Optional[np.ndarray] = None
        self._window: Optional[np.ndarray] = None

    def mp_targets(self) -> Optional[np.ndarray]:
        return self._views.targets

    def reset(self, batch: int) -> None:
        self._batch = int(batch)
        self._accepted = np.full((batch, self._order), SILENCE,
                                 dtype=np.int64)
        self._accepted[:, self._source] = self._message_code
        self._transmissions_left = np.zeros((batch, self._order),
                                            dtype=np.int64)
        self._transmissions_left[:, self._source] = self._window_length
        self._window = np.full((batch, self._order, self._window_length),
                               SILENCE, dtype=np.int64)

    def intent_codes(self, round_index: int) -> np.ndarray:
        active = (self._accepted != SILENCE) & (self._transmissions_left > 0)
        # The scalar protocol spends a relay round even when it has no
        # children to address, so decrement before masking leaves out.
        self._transmissions_left[active] -= 1
        return np.where(active & self._has_children, self._accepted,
                        np.int64(SILENCE))

    def observe(self, round_index: int, received: np.ndarray) -> None:
        heard = self._views.gather(received)
        pending = self._accepted == SILENCE
        slot = self._window[:, :, round_index % self._window_length]
        np.copyto(slot, heard, where=pending)
        copies = (self._window == heard[:, :, np.newaxis]).sum(axis=2)
        accept = pending & (heard != SILENCE) & (copies >= self._threshold)
        self._accepted[accept] = heard[accept]
        self._transmissions_left[accept] = self._window_length

    def output_codes(self) -> np.ndarray:
        return np.where(self._accepted != SILENCE, self._accepted,
                        self._default_code)


class PlanLift(BatchProgram):
    """Batched :class:`~repro.core.kucera.algorithm.KuceraBroadcast`.

    A compiled plan's directives are indexed by line position — the
    tree depth of the executing node — so all nodes of one depth share
    their round schedule.  Per-trial state is the bit table
    ``(B, n, contexts)``; transmissions and receptions are replayed
    from the compiled ``(position, round) -> context`` maps, and the
    copy/vote control directives run at the start of their scheduled
    round (directives scheduled past the final round run at output
    time), in the compiler's per-position execution order — exactly
    the scalar :class:`~repro.core.kucera.algorithm.KuceraProtocol`
    ordering.
    """

    model = MESSAGE_PASSING

    def __init__(self, algorithm, codec: PayloadCodec):
        compiled = algorithm.compiled
        tree = algorithm.tree
        topology = algorithm.topology
        self._order = topology.order
        self._rounds = algorithm.rounds
        self._source = algorithm.source
        self._codec = codec
        self._message_code = np.int64(codec.code_of(algorithm.source_message))
        self._default_code = np.int64(codec.code_of(algorithm.default))
        depth = np.asarray(tree.depth, dtype=np.int64)
        nodes_at = {
            position: np.nonzero(depth == position)[0]
            for position in range(int(depth.max()) + 1)
        }
        context_index: Dict[tuple, int] = {(): 0}

        def index_of(context) -> int:
            return context_index.setdefault(context, len(context_index))

        transmit_ctx = np.full((self._rounds, self._order), -1,
                               dtype=np.int64)
        for position, by_round in compiled.transmissions.items():
            nodes = nodes_at.get(position)
            if nodes is None or not nodes.size:
                continue
            for round_index, context in by_round.items():
                transmit_ctx[round_index, nodes] = index_of(context)
        receive_ctx = np.full((self._rounds, self._order), -1,
                              dtype=np.int64)
        for position, by_round in compiled.receptions.items():
            nodes = nodes_at.get(position)
            if nodes is None or not nodes.size:
                continue
            for round_index, context in by_round.items():
                if round_index < self._rounds:
                    receive_ctx[round_index, nodes] = index_of(context)
        # Controls, bucketed by execution round; compiled.controls is
        # already in per-position execution order, and directives of
        # different positions touch disjoint nodes, so concatenation
        # preserves the scalar semantics.
        self._controls_by_round: Dict[int, list] = {}
        self._tail_controls: list = []
        for position in sorted(compiled.controls):
            nodes = nodes_at.get(position)
            if nodes is None or not nodes.size:
                continue
            for directive in compiled.controls[position]:
                entry = (
                    directive.kind, nodes,
                    index_of(directive.target_context),
                    tuple(index_of(ctx)
                          for ctx in directive.source_contexts),
                )
                if directive.round_index < self._rounds:
                    self._controls_by_round.setdefault(
                        directive.round_index, []
                    ).append(entry)
                else:
                    self._tail_controls.append(entry)
        self._transmit_ctx = transmit_ctx
        self._receive_ctx = receive_ctx
        self._contexts = len(context_index)
        self._root_context = 0
        watch = np.array(
            [-1 if tree.parent[node] is None else tree.parent[node]
             for node in range(self._order)],
            dtype=np.int64,
        )
        self._views = WatchViews(topology, watch)
        self._has_children = np.array(
            [bool(tree.children(node)) for node in range(self._order)],
            dtype=bool,
        )
        self._node_range = np.arange(self._order)
        self._batch = 0
        self._bits: Optional[np.ndarray] = None

    def mp_targets(self) -> Optional[np.ndarray]:
        return self._views.targets

    def reset(self, batch: int) -> None:
        self._batch = int(batch)
        self._bits = np.full((batch, self._order, self._contexts), SILENCE,
                             dtype=np.int64)
        self._bits[:, self._source, self._root_context] = self._message_code

    def _apply_control(self, kind: str, nodes: np.ndarray, target: int,
                       sources: tuple) -> None:
        bits = self._bits
        current = bits[:, nodes, target]
        if kind == "copy":
            source = bits[:, nodes, sources[0]]
            bits[:, nodes, target] = np.where(source != SILENCE, source,
                                              current)
            return
        votes = bits[:, nodes][:, :, list(sources)]
        counts = (
            votes[..., np.newaxis] == np.arange(self._codec.size)
        ).sum(axis=2)
        best = counts.max(axis=2)
        tied = (counts == best[..., np.newaxis]).sum(axis=2)
        winner = np.where(
            (best > 0) & (tied == 1),
            counts.argmax(axis=2), self._default_code,
        )
        # Abstaining contexts are excluded; with no votes at all the
        # target bit keeps its old value (possibly still unset).
        bits[:, nodes, target] = np.where(best > 0, winner, current)

    def intent_codes(self, round_index: int) -> np.ndarray:
        for entry in self._controls_by_round.get(round_index, ()):
            self._apply_control(*entry)
        context = self._transmit_ctx[round_index]
        values = self._bits[:, self._node_range, np.maximum(context, 0)]
        payload = np.where(values != SILENCE, values, self._default_code)
        scheduled = (context >= 0) & self._has_children
        return np.where(scheduled, payload, np.int64(SILENCE))

    def observe(self, round_index: int, received: np.ndarray) -> None:
        heard = self._views.gather(received)
        context = self._receive_ctx[round_index]
        store = (context >= 0) & (heard != SILENCE)
        rows, nodes = np.nonzero(store)
        self._bits[rows, nodes, context[nodes]] = heard[rows, nodes]

    def output_codes(self) -> np.ndarray:
        for entry in self._tail_controls:
            self._apply_control(*entry)
        values = self._bits[:, :, self._root_context]
        return np.where(values != SILENCE, values, self._default_code)
