"""Batched protocol programs: whole trial batches stepped per round.

The scalar engine interprets one :class:`~repro.engine.protocol.
Protocol` instance per node per trial; this module replaces the
per-trial interpretation with one *program* object per scenario that
advances ``B`` trials at once on ``(B, n)`` code arrays.

The workhorse is :class:`ScheduleLift` — the adapter the batchsim
design builds on: every natively batchable algorithm in the library is
a *relay* protocol whose transmission timetable is deterministic (a
pure function of the round index, never of what was delivered), so the
schedule can be replayed **once** into ``(rounds, n)`` boolean masks
and broadcast across the whole trial batch.  What varies per trial is
only each node's adopted value, which the lift tracks as a code array
under one of two adoption rules:

* ``first`` — adopt the first payload heard inside the listening
  schedule (Simple-Omission, flooding, the layered schedule,
  Omission-Radio);
* ``majority`` — collect every payload heard inside the listening
  schedule and relay/output the majority, default on a tie
  (Simple-Malicious, Malicious-Radio).

The family-specific :func:`lift_tree_phase` / :func:`lift_radio_repeat`
/ :func:`lift_flooding` / :func:`lift_layered_schedule` builders do the
one-off schedule replay; algorithms expose them through their
``batch_program(codec)`` hook (see :mod:`repro.batchsim.engine` for the
eligibility contract).  Each builder mirrors its scalar protocol's
semantics *exactly* — same listening windows, same tie handling, same
uninformed-transmitter behaviour — which is what makes batched per-trial
indicators bit-identical to the scalar engine on matched streams
(property-tested in ``tests/test_batchsim.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.batchsim.codec import SILENCE, PayloadCodec
from repro.engine.protocol import MESSAGE_PASSING

__all__ = [
    "ADOPT_FIRST",
    "ADOPT_MAJORITY",
    "BatchProgram",
    "ScheduleLift",
    "lift_tree_phase",
    "lift_radio_repeat",
    "lift_flooding",
    "lift_layered_schedule",
]

ADOPT_FIRST = "first"
ADOPT_MAJORITY = "majority"


class BatchProgram(ABC):
    """The vectorised counterpart of one scenario's per-node protocols.

    One program instance serves many chunks: :meth:`reset` reallocates
    the per-trial state, then the engine alternates
    :meth:`intent_codes` / :meth:`observe` for every round and reads
    :meth:`output_codes` at the end.
    """

    #: Communication model the program targets (engine picks delivery).
    model: str

    @abstractmethod
    def reset(self, batch: int) -> None:
        """Initialise state for a fresh batch of ``batch`` trials."""

    @abstractmethod
    def intent_codes(self, round_index: int) -> np.ndarray:
        """``(B, n)`` transmission intents (codes, ``SILENCE`` = quiet)."""

    def mp_targets(self) -> Optional[np.ndarray]:
        """Static per-slot target mask for message-passing delivery.

        Aligned with the receiver CSR of
        :func:`~repro.engine.simulator.deliver_mp_batch`: entry ``j``
        says whether the sender of inbox slot ``j`` addresses the
        slot's owner.  ``None`` means every sender addresses all of its
        neighbours.  Radio programs never consult this.
        """
        return None

    @abstractmethod
    def observe(self, round_index: int, received: np.ndarray) -> None:
        """Fold one round's deliveries into the per-trial state.

        ``received`` is the ``(B, n)`` heard-code array in the radio
        model, or the ``(B, E)`` inbox-code array of
        :func:`~repro.engine.simulator.deliver_mp_batch` in message
        passing.
        """

    @abstractmethod
    def output_codes(self) -> np.ndarray:
        """``(B, n)`` final outputs (the scalar protocols' ``output()``)."""


class ScheduleLift(BatchProgram):
    """Generic relay program over a replayed deterministic schedule.

    Parameters
    ----------
    model:
        Communication model (fixes the delivery shape).
    codec:
        The scenario's payload codec.
    transmit_schedule:
        ``(rounds, n)`` bool — which nodes are scheduled to transmit.
    listen_schedule:
        ``(rounds, n)`` bool — which nodes accept deliveries when.
    initial_codes:
        ``(n,)`` codes; non-``SILENCE`` entries are initially-informed
        nodes (the source's ``Ms``) whose value never changes.
    default_code:
        The fallback payload code (the paper's ``0``).
    adoption:
        :data:`ADOPT_FIRST` or :data:`ADOPT_MAJORITY`.
    requires_message:
        When True a scheduled node stays silent until informed
        (flooding); when False it transmits its current value, i.e. the
        default while uninformed (the tree-phase/layered pessimistic
        reading).
    watch:
        Message passing only: ``(n,)`` node each listener accepts
        payloads from (its tree parent), ``-1`` for nobody.
    topology:
        Required with ``watch`` to resolve inbox slots.
    """

    def __init__(self, *, model: str, codec: PayloadCodec,
                 transmit_schedule: np.ndarray, listen_schedule: np.ndarray,
                 initial_codes: np.ndarray, default_code: int,
                 adoption: str, requires_message: bool = False,
                 watch: Optional[np.ndarray] = None, topology=None):
        if adoption not in (ADOPT_FIRST, ADOPT_MAJORITY):
            raise ValueError(f"unknown adoption rule {adoption!r}")
        self.model = model
        self._codec = codec
        self._transmit = np.asarray(transmit_schedule, dtype=bool)
        self._listen = np.asarray(listen_schedule, dtype=bool)
        if self._transmit.shape != self._listen.shape:
            raise ValueError("transmit and listen schedules disagree in shape")
        self._order = self._transmit.shape[1]
        self._initial = np.asarray(initial_codes, dtype=np.int64)
        self._default = int(default_code)
        self._adoption = adoption
        self._requires_message = bool(requires_message)
        self._watch_slots: Optional[np.ndarray] = None
        self._watch_mask: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        if model == MESSAGE_PASSING:
            if watch is None or topology is None:
                raise ValueError(
                    "message-passing lifts need a watch map and topology"
                )
            self._build_mp_views(topology, np.asarray(watch, dtype=np.int64))
        # Per-batch state, allocated by reset().
        self._batch = 0
        self._adopted: Optional[np.ndarray] = None
        self._counts: Optional[np.ndarray] = None

    def _build_mp_views(self, topology, watch: np.ndarray) -> None:
        """Resolve each listener's watched sender into an inbox slot.

        Slot ``indptr[v] + k`` of the delivery inbox carries what
        neighbour ``indices[indptr[v] + k]`` sent to ``v``; the watch
        slot of ``v`` is the one whose sender is ``watch[v]``.  The
        static target mask marks, per slot, whether the slot's sender
        addresses the owner — which for the tree relays is exactly
        "the owner watches the sender" (parents transmit to all of
        their children at once).
        """
        indptr, indices = topology.csr_neighbors()
        owners = np.repeat(np.arange(topology.order), np.diff(indptr))
        self._targets = watch[owners] == indices
        slots = np.zeros(topology.order, dtype=np.int64)
        mask = np.zeros(topology.order, dtype=bool)
        for node in range(topology.order):
            if watch[node] < 0:
                continue
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            matches = np.nonzero(indices[lo:hi] == watch[node])[0]
            if matches.size:
                slots[node] = lo + int(matches[0])
                mask[node] = True
        self._watch_slots = slots
        self._watch_mask = mask

    @property
    def rounds(self) -> int:
        """Length of the replayed schedule."""
        return self._transmit.shape[0]

    @property
    def order(self) -> int:
        """Number of nodes ``n``."""
        return self._order

    def mp_targets(self) -> Optional[np.ndarray]:
        return self._targets

    def reset(self, batch: int) -> None:
        self._batch = int(batch)
        self._adopted = np.broadcast_to(
            self._initial, (self._batch, self._order)
        ).copy()
        if self._adoption == ADOPT_MAJORITY:
            self._counts = np.zeros(
                (self._batch, self._order, self._codec.size), dtype=np.int64
            )

    def _values(self) -> np.ndarray:
        """``(B, n)`` current relay values (the scalar ``output()``)."""
        if self._adoption == ADOPT_FIRST:
            return np.where(self._adopted != SILENCE, self._adopted,
                            np.int64(self._default))
        # Majority with ties (and no votes) falling to the default;
        # initially-informed nodes always relay their own message.
        best = self._counts.max(axis=2)
        tied = (self._counts == best[..., np.newaxis]).sum(axis=2)
        decided = np.where(
            (best > 0) & (tied == 1),
            self._counts.argmax(axis=2), np.int64(self._default),
        )
        return np.where(self._initial != SILENCE, self._initial, decided)

    def intent_codes(self, round_index: int) -> np.ndarray:
        scheduled = self._transmit[round_index]
        values = self._values()
        intents = np.where(scheduled, values, np.int64(SILENCE))
        if self._requires_message:
            informed = (self._adopted != SILENCE) | (self._initial != SILENCE)
            intents = np.where(informed, intents, np.int64(SILENCE))
        return intents

    def observe(self, round_index: int, received: np.ndarray) -> None:
        if self.model == MESSAGE_PASSING:
            # Gather each listener's watched inbox slot; nodes watching
            # nobody (the source) hear silence.
            if received.shape[1] == 0:  # edgeless graph: nothing arrives
                heard = np.full((received.shape[0], self._order),
                                SILENCE, dtype=np.int64)
            else:
                heard = received[:, self._watch_slots]
                heard[:, ~self._watch_mask] = SILENCE
        else:
            heard = received
        listening = self._listen[round_index]
        if self._adoption == ADOPT_FIRST:
            adopt = listening & (heard != SILENCE) & (self._adopted == SILENCE)
            np.copyto(self._adopted, heard, where=adopt)
            return
        votes = listening & (heard != SILENCE)
        rows, nodes = np.nonzero(votes)
        # One heard payload per (trial, node) per round, so the index
        # triples are unique and a fancy-indexed increment is exact.
        self._counts[rows, nodes, heard[rows, nodes]] += 1

    def output_codes(self) -> np.ndarray:
        return self._values()


def _initial_codes(order: int, source: int, message_code: int) -> np.ndarray:
    codes = np.full(order, SILENCE, dtype=np.int64)
    codes[source] = message_code
    return codes


def lift_tree_phase(algorithm, codec: PayloadCodec,
                    adoption: str) -> ScheduleLift:
    """Replay a :class:`~repro.core.tree_phase.PhaseSchedule` timetable.

    Covers Simple-Omission (``first``) and Simple-Malicious
    (``majority``) in both models: node ``v_i`` transmits its current
    value throughout its own phase (message passing: only to its tree
    children, and not at all when it has none) and listens throughout
    its parent's phase.
    """
    schedule = algorithm.schedule
    tree = algorithm.tree
    order = algorithm.topology.order
    rounds = schedule.total_rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    listen = np.zeros((rounds, order), dtype=bool)
    watch = np.full(order, -1, dtype=np.int64)
    for node in range(order):
        start, end = schedule.window_of(node)
        transmit[start:end, node] = True
        if algorithm.model == MESSAGE_PASSING and not tree.children(node):
            transmit[:, node] = False  # leaves have nobody to address
        window = schedule.listening_window(node)
        if window is not None:
            listen[window[0]:window[1], node] = True
        parent = tree.parent[node]
        if parent is not None:
            watch[node] = parent
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default), adoption=adoption,
        watch=watch if algorithm.model == MESSAGE_PASSING else None,
        topology=algorithm.topology,
    )


def lift_radio_repeat(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay a :class:`~repro.core.radio_repeat.RadioRepeat` timetable.

    Series ``s`` of the repeated base schedule occupies rounds
    ``[s·m, (s+1)·m)``; its transmitters relay their current value and
    each node listens exactly during the series in which the fault-free
    schedule informs it (the source listens never).
    """
    from repro.core.radio_repeat import ADOPT_ANY

    base = algorithm.base_schedule
    order = algorithm.topology.order
    m = algorithm.phase_length
    rounds = algorithm.rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    listen = np.zeros((rounds, order), dtype=bool)
    for series in range(base.length):
        window = slice(series * m, (series + 1) * m)
        for node in base.transmitters(series):
            transmit[window, node] = True
    for node in range(order):
        series = algorithm.listening_series(node)
        if series >= 0:
            listen[series * m:(series + 1) * m, node] = True
    adoption = ADOPT_FIRST if algorithm.rule == ADOPT_ANY else ADOPT_MAJORITY
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default), adoption=adoption,
    )


def lift_flooding(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay :class:`~repro.core.flooding.FastFlooding` (Theorem 3.1).

    Every node with tree children re-sends its adopted message to them
    in every round — but only once informed — and every non-root node
    listens to its tree parent throughout.
    """
    order = algorithm.topology.order
    rounds = algorithm.rounds
    tree = algorithm.tree
    has_children = np.array(
        [bool(tree.children(node)) for node in range(order)], dtype=bool
    )
    transmit = np.broadcast_to(has_children, (rounds, order)).copy()
    watch = np.array(
        [-1 if tree.parent[node] is None else tree.parent[node]
         for node in range(order)],
        dtype=np.int64,
    )
    listen = np.broadcast_to(watch >= 0, (rounds, order)).copy()
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.source, codec.code_of(algorithm.source_message)
        ),
        default_code=codec.code_of(algorithm.default),
        adoption=ADOPT_FIRST, requires_message=True,
        watch=watch, topology=algorithm.topology,
    )


def lift_layered_schedule(algorithm, codec: PayloadCodec) -> ScheduleLift:
    """Replay a :class:`~repro.radio.layered_broadcast.
    LayeredScheduleBroadcast` step list.

    The source transmits alone for ``source_steps`` rounds, then round
    ``t`` activates the listed layer-2 bit nodes — which occupy the
    medium with the default payload even while uninformed — and every
    node adopts the first payload it hears in any round.
    """
    order = algorithm.topology.order
    rounds = algorithm.rounds
    transmit = np.zeros((rounds, order), dtype=bool)
    transmit[:algorithm.source_steps, algorithm.graph.source] = True
    for offset, step in enumerate(algorithm.step_nodes):
        for node in step:
            transmit[algorithm.source_steps + offset, node] = True
    listen = np.ones((rounds, order), dtype=bool)
    return ScheduleLift(
        model=algorithm.model, codec=codec,
        transmit_schedule=transmit, listen_schedule=listen,
        initial_codes=_initial_codes(
            order, algorithm.graph.source,
            codec.code_of(algorithm.source_message),
        ),
        default_code=codec.code_of(algorithm.default), adoption=ADOPT_FIRST,
    )
