"""Fast flooding for node-omission failures (Theorem 3.1, via Lemma 3.1).

The ``O(D + log n)`` message-passing algorithm: fix a BFS tree ``T`` of
height ``D``, let ``L = D + ⌈log n⌉``, and let *all* nodes of ``T``
transmit simultaneously for ``O(L)`` steps — each informed node keeps
re-sending the message to its tree children every round.  Along every
root-to-leaf branch the informed front advances by one whenever the
front node's transmitter is fault-free, i.e. the front position after
``R`` rounds is ``min(Bin(R, 1-p), branch length)``; Lemma 3.1 (the
line result of Diks & Pelc [13]) says ``R = O(L)`` rounds suffice with
probability ``1 - e^{-cL}``, and a union bound over branches gives
Theorem 3.1's ``1 - 1/n``.

This module computes the *exact* minimal round count from the binomial
front law (no asymptotic slack) and implements the algorithm.  It is
message-passing only; in the radio model simultaneous transmission
collides, which is the whole point of Theorem 3.3.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro._validation import check_node, check_positive_int
from repro.analysis.chernoff import binomial_tail_le, union_bound_target
from repro.engine.protocol import MESSAGE_PASSING, Algorithm, Protocol
from repro.graphs.bfs import SpanningTree, bfs_tree
from repro.graphs.topology import Topology

__all__ = ["FastFlooding", "FastFloodingProtocol", "flooding_rounds", "flooding_line_length"]


def flooding_line_length(n: int, radius: int) -> int:
    """``L = D + ⌈log2 n⌉`` — the padded branch length of Theorem 3.1."""
    n = check_positive_int(n, "n")
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return radius + max(1, math.ceil(math.log2(max(n, 2))))


def flooding_rounds(n: int, radius: int, p: float,
                    slack_power: float = 2.0) -> int:
    """Minimal rounds ``R`` with ``P[Bin(R, 1-p) < L] <= 1/n^slack_power``.

    The per-branch failure event is the binomial front not reaching the
    padded length ``L``; the budget per branch is ``1/n²`` so the union
    bound over (at most ``n``) branches leaves ``1/n`` overall.
    """
    n = check_positive_int(n, "n")
    target = union_bound_target(n, slack_power)
    length = flooding_line_length(n, radius)
    q = 1.0 - p
    if not 0.0 < q <= 1.0:
        raise ValueError(f"p must lie in [0, 1), got {p}")
    low = length  # cannot finish before L successes fit
    high = max(length, math.ceil(length / q))
    while binomial_tail_le(high, length - 1, q) > target:
        high *= 2
    while high - low > 1:
        mid = (low + high) // 2
        if binomial_tail_le(mid, length - 1, q) <= target:
            high = mid
        else:
            low = mid
    if binomial_tail_le(low, length - 1, q) <= target:
        return low
    return high


class FastFloodingProtocol(Protocol):
    """Per-node program: re-send the adopted message to children each round."""

    def __init__(self, algorithm: "FastFlooding", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._message = initial_message

    @property
    def has_message(self) -> bool:
        """Whether the node has adopted a message."""
        return self._message is not None

    def intent(self, round_index: int):
        if self._message is None:
            return None
        children = self._algorithm.tree.children(self._node)
        if not children:
            return None
        return {child: self._message for child in children}

    def deliver(self, round_index: int, received) -> None:
        if self._message is not None:
            return
        parent = self._algorithm.tree.parent[self._node]
        payload = received.get(parent)
        if payload is not None:
            self._message = payload

    def output(self) -> Any:
        if self._message is not None:
            return self._message
        return self._algorithm.default


class FastFlooding(Algorithm):
    """Theorem 3.1's ``O(D + log n)`` flooding algorithm (message passing).

    Parameters
    ----------
    topology, source, source_message:
        The broadcast instance.
    p:
        Failure probability used to size the round count (omission
        model).  Alternatively pass ``rounds`` explicitly.
    rounds:
        Explicit round count override (used by the E07 sweeps that
        probe the failure curve below the safe round count).
    tree:
        Optional pre-built spanning tree (default: BFS).
    default:
        Output for nodes that never hear anything.
    """

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 p: Optional[float] = None, rounds: Optional[int] = None,
                 tree: Optional[SpanningTree] = None, default: Any = 0):
        super().__init__(topology, MESSAGE_PASSING)
        self._source = check_node(source, topology.order, "source")
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        self._source_message = source_message
        self._default = default
        if tree is None:
            tree = bfs_tree(topology, self._source)
        elif tree.root != self._source:
            raise ValueError(
                f"tree is rooted at {tree.root}, not at source {self._source}"
            )
        self._tree = tree
        if rounds is None:
            if p is None:
                raise ValueError("give either rounds or p")
            rounds = flooding_rounds(topology.order, tree.height, p)
        self._rounds = check_positive_int(rounds, "rounds")

    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._source

    @property
    def source_message(self) -> Any:
        """The true source message ``Ms``."""
        return self._source_message

    @property
    def default(self) -> Any:
        """Output fallback for uninformed nodes."""
        return self._default

    @property
    def tree(self) -> SpanningTree:
        """The BFS tree being flooded."""
        return self._tree

    @property
    def rounds(self) -> int:
        return self._rounds

    def metadata(self):
        """Standard execution metadata for broadcast runs."""
        return {"source": self._source, "source_message": self._source_message}

    def protocol(self, node: int) -> Protocol:
        node = check_node(node, self.topology.order)
        initial = self._source_message if node == self._source else None
        return FastFloodingProtocol(self, node, initial)

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source twin for the impossibility adversaries."""
        return FastFloodingProtocol(self, self._source, flipped_message)

    # -- batched execution ---------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`."""
        return (self._default, self._source_message)

    def batch_program(self, codec):
        """Vectorised program: informed nodes re-send to children."""
        from repro.batchsim.programs import lift_flooding

        return lift_flooding(self, codec)
