"""Repetition-count calculators — the ``m = ⌈c log n⌉`` of Section 2.

The paper fixes phase lengths as ``m = ⌈c log n⌉`` with the constant
``c`` "determined later" from a Chernoff argument.  At finite ``n`` the
asymptotic constants are needlessly loose, so the calculators here pick
the *exact* smallest ``m`` whose per-phase failure probability clears
the ``1/n²`` union-bound budget, using exact binomial / trinomial
tails.  Tests confirm the results grow as ``Θ(log n)`` with the
predicted constants.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro._validation import check_positive_int, check_probability
from repro.analysis.chernoff import (
    repetitions_for_all_silent,
    repetitions_for_majority,
    union_bound_target,
)

__all__ = [
    "omission_phase_length",
    "mp_malicious_phase_length",
    "radio_malicious_phase_length",
    "signed_majority_error",
    "repetitions_for_signed_majority",
    "theoretical_omission_constant",
]


def omission_phase_length(n: int, p: float,
                          slack_power: float = 2.0) -> int:
    """Phase length for Simple-Omission (Theorem 2.1).

    A phase fails only if all ``m`` transmissions are faulty, so the
    requirement is ``p**m <= 1/n**slack_power``.
    """
    n = check_positive_int(n, "n")
    return repetitions_for_all_silent(p, union_bound_target(n, slack_power))


def mp_malicious_phase_length(n: int, p: float,
                              slack_power: float = 2.0) -> int:
    """Phase length for Simple-Malicious in message passing (Theorem 2.2).

    Each of the ``m`` receptions from the parent is wrong independently
    with probability at most ``p`` (the transmission was faulty and the
    adversary replaced it); the phase fails when wrong receptions reach
    half, so ``m`` is the smallest majority length with error
    ``<= 1/n**slack_power``.  Requires ``p < 1/2``.
    """
    n = check_positive_int(n, "n")
    return repetitions_for_majority(p, union_bound_target(n, slack_power))


def signed_majority_error(repetitions: int, good_prob: float,
                          bad_prob: float) -> float:
    """``P[#bad >= #good]`` over i.i.d. trinomial steps, exact.

    Each step is *good* with probability ``good_prob`` (correct message
    heard), *bad* with probability ``bad_prob`` (wrong message heard)
    and silent otherwise.  This is the reception process at a radio
    node during its parent's phase in the Theorem 2.4 analysis — the
    vote fails when the correct message is not in the strict majority
    of the messages received.
    """
    repetitions = check_positive_int(repetitions, "repetitions")
    good_prob = check_probability(good_prob, "good_prob", allow_zero=True, allow_one=True)
    bad_prob = check_probability(bad_prob, "bad_prob", allow_zero=True, allow_one=True)
    if good_prob + bad_prob > 1.0 + 1e-12:
        raise ValueError(
            f"good_prob + bad_prob must not exceed 1, got "
            f"{good_prob} + {bad_prob}"
        )
    neutral = max(0.0, 1.0 - good_prob - bad_prob)
    # Distribution of (good - bad): convolve the per-step kernel
    # [-1 -> bad, 0 -> neutral, +1 -> good] m times.
    kernel = np.array([bad_prob, neutral, good_prob], dtype=float)
    dist = np.array([1.0])
    for _ in range(repetitions):
        dist = np.convolve(dist, kernel)
    # dist[k] = P[good - bad = k - repetitions]; failure is good - bad <= 0.
    return float(dist[: repetitions + 1].sum())


def repetitions_for_signed_majority(good_prob: float, bad_prob: float,
                                    target: float,
                                    max_repetitions: int = 1 << 14) -> int:
    """Smallest ``m`` with ``signed_majority_error(m, ...) <= target``.

    Requires ``good_prob > bad_prob`` — exactly the Theorem 2.4
    condition ``(1-p)^{Δ+1} > p`` at a degree-``Δ`` receiver.
    """
    good_prob = check_probability(good_prob, "good_prob", allow_zero=True, allow_one=True)
    bad_prob = check_probability(bad_prob, "bad_prob", allow_zero=True, allow_one=True)
    target = check_probability(target, "target", allow_zero=False)
    if good_prob <= bad_prob:
        raise ValueError(
            f"signed majority cannot converge: good_prob {good_prob} <= "
            f"bad_prob {bad_prob} (infeasible regime of Theorem 2.4)"
        )
    low, high = 0, 1
    while signed_majority_error(high, good_prob, bad_prob) > target:
        low, high = high, high * 2
        if high > max_repetitions:
            raise RuntimeError(
                f"no repetition count up to {max_repetitions} reaches "
                f"target {target}; margin too thin "
                f"(good={good_prob}, bad={bad_prob})"
            )
    while high - low > 1:
        mid = (low + high) // 2
        if signed_majority_error(mid, good_prob, bad_prob) <= target:
            high = mid
        else:
            low = mid
    return high


def radio_malicious_phase_length(n: int, p: float, max_degree: int,
                                 slack_power: float = 2.0) -> int:
    """Phase length for Simple-Malicious in the radio model (Theorem 2.4).

    Per phase step the receiver hears the correct message with
    probability at least ``q = (1-p)^{Δ+1}`` (its whole closed
    neighbourhood fault-free) and a wrong message with probability at
    most ``p``; the phase fails when wrong receptions catch up with
    correct ones.  Feasible regime only (``p < q``).
    """
    n = check_positive_int(n, "n")
    p = check_probability(p, "p", allow_zero=True)
    good = (1.0 - p) ** (max_degree + 1)
    return repetitions_for_signed_majority(
        good, p, union_bound_target(n, slack_power)
    )


def theoretical_omission_constant(p: float) -> float:
    """The asymptotic constant ``c`` with ``m = c·ln n`` for omission.

    From ``p^m <= n^{-2}``: ``c = 2 / ln(1/p)``.  Exposed so tests can
    check :func:`omission_phase_length` against its asymptote.
    """
    p = check_probability(p, "p", allow_zero=False)
    return 2.0 / math.log(1.0 / p)
