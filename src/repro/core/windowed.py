"""The windowed Simple-Malicious variant (Section 2.2.2 discussion).

Theorem 2.2's two assumptions — every node knows its enumeration index
and all nodes wake up simultaneously — "can again be discarded in the
message passing model by modifying the algorithm": a node starts its
transmission window immediately upon completion of its listening
window, but since failures can make links speak out of turn, it cannot
know the true start of its listening window.  The fix from the paper:

    "each node ``v_i`` must listen all the time.  On each round ``t``,
    and for each of its incident links, ``v_i`` examines the messages
    it has heard on that link in the window of the last ``m`` rounds,
    ``[t-m+1, t]``.  If ``m/2`` identical copies of the same message
    have been received, then ``v_i`` accepts this message as a genuine
    one, and proceeds to start its own transmission window."

By Chernoff, a correct parent window yields ``>= m/2`` true copies with
high probability, while ``m/2`` identical *false* copies inside any
``m``-round window require ``m/2`` failures there — exponentially
unlikely for ``p < 1/2``.  No global clock, no index knowledge; each
node only knows its tree neighbours.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional

from repro._validation import check_node, check_positive_int
from repro.engine.protocol import MESSAGE_PASSING, Algorithm, Protocol
from repro.core.parameters import mp_malicious_phase_length
from repro.graphs.bfs import SpanningTree, bfs_tree
from repro.graphs.topology import Topology

__all__ = ["WindowedMalicious", "WindowedMaliciousProtocol"]


class WindowedMaliciousProtocol(Protocol):
    """Per-node program: sliding-window acceptance, then an ``m``-round relay."""

    def __init__(self, algorithm: "WindowedMalicious", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._window: Deque[Any] = deque(maxlen=algorithm.window_length)
        self._accepted: Optional[Any] = initial_message
        self._transmissions_left = (
            algorithm.window_length if initial_message is not None else 0
        )

    @property
    def accepted(self) -> Optional[Any]:
        """The accepted message (``None`` until acceptance)."""
        return self._accepted

    def intent(self, round_index: int):
        if self._accepted is None or self._transmissions_left <= 0:
            return None
        children = self._algorithm.tree.children(self._node)
        self._transmissions_left -= 1
        if not children:
            return None
        return {child: self._accepted for child in children}

    def deliver(self, round_index: int, received) -> None:
        if self._accepted is not None:
            return
        parent = self._algorithm.tree.parent[self._node]
        self._window.append(received.get(parent))
        threshold = self._algorithm.acceptance_threshold
        counts: Dict[Any, int] = {}
        for payload in self._window:
            if payload is None:
                continue
            counts[payload] = counts.get(payload, 0) + 1
            if counts[payload] >= threshold:
                self._accepted = payload
                self._transmissions_left = self._algorithm.window_length
                return

    def output(self) -> Any:
        if self._accepted is not None:
            return self._accepted
        return self._algorithm.default


class WindowedMalicious(Algorithm):
    """Simple-Malicious without index knowledge or simultaneous wake-up.

    Parameters
    ----------
    topology, source, source_message:
        The broadcast instance (message passing only).
    window_length:
        The window/relay length ``m``; omit and give ``p`` to size it
        from the Theorem 2.2 calculator (the acceptance threshold is
        ``⌈m/2⌉`` as in the paper).
    horizon:
        Total rounds; defaults to ``(D + 2) · m`` — depth-``d`` nodes
        accept by the end of their parent's relay, round ``(d+1)·m``.
    """

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 window_length: Optional[int] = None,
                 p: Optional[float] = None,
                 horizon: Optional[int] = None,
                 tree: Optional[SpanningTree] = None, default: Any = 0):
        super().__init__(topology, MESSAGE_PASSING)
        self._source = check_node(source, topology.order, "source")
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        self._source_message = source_message
        self._default = default
        if tree is None:
            tree = bfs_tree(topology, self._source)
        elif tree.root != self._source:
            raise ValueError(
                f"tree is rooted at {tree.root}, not at source {self._source}"
            )
        self._tree = tree
        if window_length is None:
            if p is None:
                raise ValueError("give either window_length or p")
            window_length = mp_malicious_phase_length(topology.order, p)
        self._window_length = check_positive_int(window_length, "window_length")
        if horizon is None:
            horizon = (tree.height + 2) * self._window_length
        self._horizon = check_positive_int(horizon, "horizon")

    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._source

    @property
    def source_message(self) -> Any:
        """The true source message."""
        return self._source_message

    @property
    def default(self) -> Any:
        """Output fallback for nodes that never accept."""
        return self._default

    @property
    def tree(self) -> SpanningTree:
        """The relay tree (only parent/child knowledge is used)."""
        return self._tree

    @property
    def window_length(self) -> int:
        """The window and relay length ``m``."""
        return self._window_length

    @property
    def acceptance_threshold(self) -> int:
        """Identical copies needed inside one window: ``⌈m/2⌉``."""
        return (self._window_length + 1) // 2

    @property
    def rounds(self) -> int:
        return self._horizon

    def metadata(self):
        """Standard execution metadata for broadcast runs."""
        return {"source": self._source, "source_message": self._source_message}

    def protocol(self, node: int) -> Protocol:
        node = check_node(node, self.topology.order)
        initial = self._source_message if node == self._source else None
        return WindowedMaliciousProtocol(self, node, initial)

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source twin for the impossibility adversaries."""
        return WindowedMaliciousProtocol(self, self._source, flipped_message)

    # -- batched execution -------------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`."""
        return (self._default, self._source_message)

    def batch_program(self, codec):
        """Vectorised sliding-window acceptance program."""
        from repro.batchsim.programs import WindowedProgram

        return WindowedProgram(self, codec)
