"""Label-based collision-free radio schedules (Section 2.1 discussion).

In the radio model, anonymous networks make broadcasting impossible for
some graphs (the 4-cycle, by symmetry); with distinct labels the paper
sketches two collision-free timetables:

* **round robin** — "a node with label ``i`` to transmit only in time
  steps ``ℓK + i`` for integer ``ℓ >= 0``" (labels from ``[0, K-1]``,
  ``K`` known): one node per round by construction.
* **prime powers** — "in case ``K`` is unknown to the nodes — in time
  steps ``p_k^i`` ... where ``p_i`` is the ``i``-th prime": distinct
  primes have disjoint power sequences, so no two labelled nodes ever
  share a round.  Wildly inefficient (opportunities thin out
  exponentially), but it needs no bound on the label range — a
  feasibility statement, reproduced as such.

Both algorithms target omission failures: an informed node transmits
its message in its slots, an uninformed node keeps silent, and
receivers adopt the first payload heard (everything heard is genuine).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro._validation import check_node, check_positive_int
from repro.engine.protocol import RADIO, Algorithm, Protocol
from repro.graphs.topology import Topology

__all__ = [
    "RoundRobinBroadcast",
    "PrimeScheduleBroadcast",
    "first_primes",
]


def first_primes(count: int) -> List[int]:
    """The first ``count`` primes (simple trial-division sieve)."""
    count = check_positive_int(count, "count")
    primes: List[int] = []
    candidate = 2
    while len(primes) < count:
        if all(candidate % prime for prime in primes):
            primes.append(candidate)
        candidate += 1
    return primes


class _SlotProtocol(Protocol):
    """Shared per-node program: transmit in own slots once informed."""

    def __init__(self, algorithm: "_SlotAlgorithm", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._message = initial_message

    @property
    def has_message(self) -> bool:
        """Whether the node has adopted a message."""
        return self._message is not None

    def intent(self, round_index: int):
        if self._message is None:
            return None
        if not self._algorithm.owns_slot(self._node, round_index):
            return None
        return self._message

    def deliver(self, round_index: int, received) -> None:
        if self._message is None and received is not None:
            self._message = received

    def output(self) -> Any:
        if self._message is not None:
            return self._message
        return self._algorithm.default


class _SlotAlgorithm(Algorithm):
    """Base: a slot-ownership predicate turns labels into a timetable."""

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 rounds: int, labels: Optional[Sequence[int]] = None,
                 default: Any = 0):
        super().__init__(topology, RADIO)
        self._source = check_node(source, topology.order, "source")
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        self._source_message = source_message
        self._default = default
        self._rounds = check_positive_int(rounds, "rounds")
        if labels is None:
            labels = list(topology.nodes)
        if len(labels) != topology.order or len(set(labels)) != topology.order:
            raise ValueError("labels must be distinct, one per node")
        self._labels: Dict[int, int] = {
            node: int(label) for node, label in zip(topology.nodes, labels)
        }

    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._source

    @property
    def source_message(self) -> Any:
        """The true source message."""
        return self._source_message

    @property
    def default(self) -> Any:
        """Output fallback for uninformed nodes."""
        return self._default

    @property
    def rounds(self) -> int:
        return self._rounds

    def label_of(self, node: int) -> int:
        """The distinct label assigned to ``node``."""
        return self._labels[node]

    def owns_slot(self, node: int, round_index: int) -> bool:
        """Whether ``node`` may transmit in ``round_index``."""
        raise NotImplementedError

    def metadata(self):
        """Standard execution metadata for broadcast runs."""
        return {"source": self._source, "source_message": self._source_message}

    def protocol(self, node: int) -> Protocol:
        node = check_node(node, self.topology.order)
        initial = self._source_message if node == self._source else None
        return _SlotProtocol(self, node, initial)

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source twin for the impossibility adversaries."""
        return _SlotProtocol(self, self._source, flipped_message)

    # -- batched execution -------------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`."""
        return (self._default, self._source_message)

    def batch_program(self, codec):
        """Vectorised program replaying the label timetable once."""
        from repro.batchsim.programs import lift_slot_schedule

        return lift_slot_schedule(self, codec)


class RoundRobinBroadcast(_SlotAlgorithm):
    """Labelled round robin: label ``i`` owns rounds ``ℓK + i``.

    Parameters
    ----------
    label_range:
        ``K`` — the known label range (defaults to ``n``).
    cycles:
        How many full label cycles to run; each informed node gets one
        transmission opportunity per cycle, so front progress per cycle
        mirrors one round of the flooding analysis.
    """

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 cycles: int, label_range: Optional[int] = None,
                 labels: Optional[Sequence[int]] = None, default: Any = 0):
        if label_range is None:
            label_range = topology.order
        self._label_range = check_positive_int(label_range, "label_range")
        cycles = check_positive_int(cycles, "cycles")
        super().__init__(
            topology, source, source_message,
            rounds=cycles * self._label_range, labels=labels, default=default,
        )
        bad = [
            node for node in topology.nodes
            if not 0 <= self.label_of(node) < self._label_range
        ]
        if bad:
            raise ValueError(
                f"labels of nodes {bad[:5]} fall outside [0, {self._label_range})"
            )

    @property
    def label_range(self) -> int:
        """``K`` — one transmission slot per label per cycle."""
        return self._label_range

    def owns_slot(self, node: int, round_index: int) -> bool:
        return round_index % self._label_range == self.label_of(node)


class PrimeScheduleBroadcast(_SlotAlgorithm):
    """Prime-power timetable: the node with the ``i``-th label owns
    rounds ``p_i^k - 1`` (0-based) for every integer ``k >= 1``.

    ``K`` need not be known; distinct primes guarantee disjoint slot
    sets.  Exponentially sparse — intended for feasibility tests on
    tiny networks, exactly like the paper's aside.
    """

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 rounds: int, labels: Optional[Sequence[int]] = None,
                 default: Any = 0):
        super().__init__(
            topology, source, source_message,
            rounds=rounds, labels=labels, default=default,
        )
        ordered_labels = sorted(self.label_of(node) for node in topology.nodes)
        primes = first_primes(len(ordered_labels))
        prime_of_label = {
            label: primes[index] for index, label in enumerate(ordered_labels)
        }
        self._slots: Dict[int, set] = {}
        for node in topology.nodes:
            prime = prime_of_label[self.label_of(node)]
            slots = set()
            power = prime
            while power <= rounds:
                slots.add(power - 1)  # paper steps are 1-based
                power *= prime
            self._slots[node] = slots

    def owns_slot(self, node: int, round_index: int) -> bool:
        return round_index in self._slots[node]

    def slot_count(self, node: int) -> int:
        """Transmission opportunities ``node`` gets within the horizon."""
        return len(self._slots[node])
