"""Shared machinery for the Section 2 tree-phase algorithms.

Both naive algorithms (Simple-Omission and Simple-Malicious) use the
same global schedule: a spanning tree ``T`` rooted at the source, the
level-order enumeration ``v_1 .. v_n``, and ``n`` phases of ``m``
consecutive steps in which only ``v_i`` transmits ("to avoid collisions
in the radio model, the algorithm activates only one transmitter in
each step").  This module provides that schedule plus the common
algorithm plumbing; the two concrete algorithms differ only in how a
node turns the payloads heard during its parent's phase into its own
relayed value.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro._validation import check_node, check_positive_int
from repro.engine.protocol import MESSAGE_PASSING, Algorithm, Protocol
from repro.graphs.bfs import SpanningTree, bfs_tree
from repro.graphs.topology import Topology

__all__ = ["PhaseSchedule", "TreePhaseAlgorithm", "majority_or_default"]


def majority_or_default(votes: List[Any], default: Any) -> Any:
    """The majority payload among ``votes``, or ``default`` on tie/empty.

    "vi computes Mi := the majority message among the messages received
    by vi from its parent" — with "the default value 0 if there is no
    majority".  For binary payloads plurality and majority coincide; a
    tie for the top count yields the default.
    """
    if not votes:
        return default
    counts: Dict[Any, int] = {}
    for vote in votes:
        counts[vote] = counts.get(vote, 0) + 1
    best_count = max(counts.values())
    winners = [value for value, count in counts.items() if count == best_count]
    if len(winners) != 1:
        return default
    return winners[0]


class PhaseSchedule:
    """The ``n``-phase, ``m``-steps-per-phase global timetable.

    Phase ``i`` (1-based, following the paper) occupies rounds
    ``[(i-1)·m, i·m)`` and belongs to ``v_i`` — the node at 0-based
    rank ``i-1`` of the tree's level-order enumeration.
    """

    def __init__(self, tree: SpanningTree, phase_length: int):
        self._tree = tree
        self._m = check_positive_int(phase_length, "phase_length")
        self._rank: Dict[int, int] = {
            node: rank for rank, node in enumerate(tree.order)
        }

    @property
    def tree(self) -> SpanningTree:
        """The spanning tree the schedule follows."""
        return self._tree

    @property
    def phase_length(self) -> int:
        """Steps per phase (``m``)."""
        return self._m

    @property
    def total_rounds(self) -> int:
        """``n · m`` rounds overall."""
        return self._tree.topology.order * self._m

    def rank_of(self, node: int) -> int:
        """0-based enumeration rank of ``node`` (``v_{rank+1}``)."""
        return self._rank[node]

    def window_of(self, node: int) -> Tuple[int, int]:
        """Half-open round window ``[start, end)`` of ``node``'s phase."""
        rank = self._rank[node]
        return rank * self._m, (rank + 1) * self._m

    def in_window(self, node: int, round_index: int) -> bool:
        """Whether ``round_index`` lies in ``node``'s transmission phase."""
        start, end = self.window_of(node)
        return start <= round_index < end

    def listening_window(self, node: int) -> Optional[Tuple[int, int]]:
        """The parent's phase window (``None`` for the root)."""
        parent = self._tree.parent[node]
        if parent is None:
            return None
        return self.window_of(parent)

    def in_listening_window(self, node: int, round_index: int) -> bool:
        """Whether ``round_index`` lies in ``node``'s parent's phase."""
        window = self.listening_window(node)
        if window is None:
            return False
        start, end = window
        return start <= round_index < end

    def transmitter_at(self, round_index: int) -> int:
        """The unique node scheduled to transmit in ``round_index``."""
        if not 0 <= round_index < self.total_rounds:
            raise ValueError(
                f"round {round_index} outside schedule of "
                f"{self.total_rounds} rounds"
            )
        return self._tree.order[round_index // self._m]


class TreePhaseAlgorithm(Algorithm):
    """Base class for the Section 2 algorithms.

    Handles tree construction, phase scheduling and the counterfactual
    twin hook used by the impossibility adversaries.  Subclasses supply
    the per-node protocol class via :meth:`_make_protocol`.

    Parameters
    ----------
    topology:
        The network.
    source:
        Broadcast source ``s``.
    source_message:
        The message ``Ms`` (any non-``None`` hashable payload).
    model:
        Communication model to run in (both algorithms support both).
    phase_length:
        The per-phase step count ``m`` (derive it with the calculators
        of :mod:`repro.core.parameters`).
    tree:
        Optional pre-built spanning tree (default: BFS tree at source).
    default:
        The fallback payload ("0" in the paper).
    """

    #: Adoption rule for the vectorised :mod:`repro.batchsim` engine —
    #: ``"first"`` (Simple-Omission trusts any receipt), ``"majority"``
    #: (Simple-Malicious votes), or ``None`` when the subclass has no
    #: batched counterpart.
    _batch_adoption: Optional[str] = None

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 model: str, phase_length: int,
                 tree: Optional[SpanningTree] = None, default: Any = 0):
        super().__init__(topology, model)
        self._source = check_node(source, topology.order, "source")
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        self._source_message = source_message
        self._default = default
        if tree is None:
            tree = bfs_tree(topology, self._source)
        elif tree.root != self._source:
            raise ValueError(
                f"tree is rooted at {tree.root}, not at source {self._source}"
            )
        self._schedule = PhaseSchedule(tree, phase_length)

    # -- accessors -------------------------------------------------------
    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._source

    @property
    def source_message(self) -> Any:
        """The true source message ``Ms``."""
        return self._source_message

    @property
    def default(self) -> Any:
        """The fallback payload used by uninformed nodes."""
        return self._default

    @property
    def schedule(self) -> PhaseSchedule:
        """The global phase timetable."""
        return self._schedule

    @property
    def tree(self) -> SpanningTree:
        """The spanning tree used by the schedule."""
        return self._schedule.tree

    @property
    def phase_length(self) -> int:
        """Steps per phase (``m``)."""
        return self._schedule.phase_length

    @property
    def rounds(self) -> int:
        return self._schedule.total_rounds

    def metadata(self) -> Dict[str, Any]:
        """Standard execution metadata for broadcast runs."""
        return {"source": self._source, "source_message": self._source_message}

    # -- protocol factory -------------------------------------------------
    def protocol(self, node: int) -> Protocol:
        node = check_node(node, self.topology.order)
        return self._make_protocol(node, self._message_for(node))

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source protocol carrying the flipped message (for adversaries)."""
        return self._make_protocol(self._source, flipped_message)

    def _message_for(self, node: int) -> Optional[Any]:
        """The initial message of ``node`` (``Ms`` at the source)."""
        return self._source_message if node == self._source else None

    def _make_protocol(self, node: int, initial_message: Optional[Any]) -> Protocol:
        raise NotImplementedError

    # -- batched execution -------------------------------------------------
    def batch_payloads(self) -> Optional[Tuple[Any, Any]]:
        """Payload alphabet for :mod:`repro.batchsim` (``None`` = opt out)."""
        if self._batch_adoption is None:
            return None
        return (self._default, self._source_message)

    def batch_program(self, codec):
        """Vectorised program replaying the phase schedule once."""
        if self._batch_adoption is None:
            return None
        from repro.batchsim.programs import lift_tree_phase

        return lift_tree_phase(self, codec, self._batch_adoption)

    # -- helpers shared by protocols --------------------------------------
    def payload_targets(self, node: int) -> Tuple[int, ...]:
        """Message-passing targets: the node's tree children."""
        return self.tree.children(node)

    def wrap_payload(self, node: int, payload: Any) -> Any:
        """Shape a payload as an intent for the active model."""
        if self.model == MESSAGE_PASSING:
            children = self.payload_targets(node)
            if not children:
                return None
            return {child: payload for child in children}
        return payload
