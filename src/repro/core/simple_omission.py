"""Algorithm Simple-Omission (Section 2.1, Theorem 2.1).

::

    For i = 1 to n do
      Phase i: For m steps:
        - v_i transmits the source message Ms (or 0 if it has not
          received Ms).
        - All other nodes remain silent.

Because only one node transmits per step there are no radio collisions,
and the same algorithm (and analysis) serves both communication models.
A node adopts the first payload it hears from its tree parent during
the parent's phase; under omission failures everything received is
genuine, so no voting is needed.  Theorem 2.1: with
``m >= log(n²)/log(1/p)`` each phase delivers with probability at least
``1 - 1/n²`` and the union bound makes the algorithm almost-safe for
every ``p < 1``.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.engine.protocol import MESSAGE_PASSING, Protocol
from repro.core.parameters import omission_phase_length
from repro.core.tree_phase import TreePhaseAlgorithm
from repro.graphs.bfs import SpanningTree
from repro.graphs.topology import Topology

__all__ = ["SimpleOmission", "SimpleOmissionProtocol"]


class SimpleOmissionProtocol(Protocol):
    """Per-node program of Algorithm Simple-Omission.

    State: the adopted message (initially ``Ms`` at the source, unset
    elsewhere).  Behaviour is a pure function of the round number and
    the deliveries received, as the engine contract requires.
    """

    def __init__(self, algorithm: "SimpleOmission", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._message = initial_message

    @property
    def node(self) -> int:
        """The node this protocol instance runs on."""
        return self._node

    @property
    def has_message(self) -> bool:
        """Whether the node has adopted a message."""
        return self._message is not None

    def intent(self, round_index: int):
        algorithm = self._algorithm
        if not algorithm.schedule.in_window(self._node, round_index):
            return None
        payload = self._message if self._message is not None else algorithm.default
        return algorithm.wrap_payload(self._node, payload)

    def deliver(self, round_index: int, received) -> None:
        if self._message is not None:
            return
        algorithm = self._algorithm
        if not algorithm.schedule.in_listening_window(self._node, round_index):
            return
        if algorithm.model == MESSAGE_PASSING:
            parent = algorithm.tree.parent[self._node]
            payload = received.get(parent)
        else:
            payload = received
        if payload is not None:
            self._message = payload

    def output(self) -> Any:
        if self._message is not None:
            return self._message
        return self._algorithm.default


class SimpleOmission(TreePhaseAlgorithm):
    """Algorithm Simple-Omission, runnable in both models.

    Parameters match :class:`~repro.core.tree_phase.TreePhaseAlgorithm`;
    ``phase_length`` may be omitted by giving the failure probability
    ``p``, in which case the exact Theorem 2.1 phase length for the
    ``1/n²`` budget is computed.
    """

    #: Receipts are trustworthy under omission failures, so the batched
    #: program adopts the first payload heard in the listening window.
    _batch_adoption = "first"

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 model: str, phase_length: Optional[int] = None,
                 p: Optional[float] = None,
                 tree: Optional[SpanningTree] = None, default: Any = 0):
        if phase_length is None:
            if p is None:
                raise ValueError("give either phase_length or p")
            phase_length = omission_phase_length(topology.order, p)
        super().__init__(
            topology, source, source_message, model, phase_length,
            tree=tree, default=default,
        )

    def _make_protocol(self, node: int, initial_message: Optional[Any]) -> Protocol:
        return SimpleOmissionProtocol(self, node, initial_message)
