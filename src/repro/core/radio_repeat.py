"""Algorithms Omission-Radio and Malicious-Radio (Theorem 3.4).

Take any fault-free broadcasting schedule ``A`` of length ``opt`` and
"repeat every step ``i`` of ``A`` in a series ``S_i`` of consecutive
``m = ⌈c log n⌉`` steps".  Every node ``v`` that gets the source
message from ``p(v)`` at step ``i`` of ``A`` listens during series
``S_i`` and sets its value ``M_v`` to

* any payload received (Algorithm **Omission-Radio** — receipts are
  trustworthy under omission failures), or
* the majority of the payloads received, default 0 on a tie or silence
  (Algorithm **Malicious-Radio**).

In later series where ``v`` is scheduled to transmit, it transmits
``M_v``.  Total time ``opt · m = O(opt · log n)``; almost-safe for any
``p < 1`` (omission) or ``p < (1-p)^{Δ+1}`` (malicious), by the same
arguments as Theorems 2.1 / 2.4.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro._validation import check_positive_int
from repro.engine.protocol import RADIO, Algorithm, Protocol
from repro.core.parameters import (
    omission_phase_length,
    radio_malicious_phase_length,
)
from repro.core.tree_phase import majority_or_default
from repro.graphs.topology import Topology
from repro.radio.schedule import RadioSchedule

__all__ = ["RadioRepeat", "RadioRepeatProtocol", "ADOPT_ANY", "ADOPT_MAJORITY"]

ADOPT_ANY = "any"
"""Omission-Radio adoption rule: trust the first payload heard."""

ADOPT_MAJORITY = "majority"
"""Malicious-Radio adoption rule: majority vote, default on ties."""


class RadioRepeatProtocol(Protocol):
    """Per-node program of the schedule-repetition algorithms."""

    def __init__(self, algorithm: "RadioRepeat", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._initial_message = initial_message
        self._votes: List[Any] = []
        self._adopted: Optional[Any] = None

    def _current_value(self) -> Any:
        """``M_v`` — the value this node would transmit right now."""
        if self._initial_message is not None:
            return self._initial_message
        algorithm = self._algorithm
        if algorithm.rule == ADOPT_ANY:
            if self._adopted is not None:
                return self._adopted
            return algorithm.default
        if not self._votes:
            return algorithm.default
        return majority_or_default(self._votes, algorithm.default)

    def intent(self, round_index: int):
        algorithm = self._algorithm
        series = round_index // algorithm.phase_length
        if self._node not in algorithm.base_schedule.transmitters(series):
            return None
        return self._current_value()

    def deliver(self, round_index: int, received) -> None:
        if received is None:
            return
        algorithm = self._algorithm
        series = round_index // algorithm.phase_length
        if series != algorithm.listening_series(self._node):
            return
        if algorithm.rule == ADOPT_ANY:
            if self._adopted is None:
                self._adopted = received
        else:
            self._votes.append(received)

    def output(self) -> Any:
        return self._current_value()


class RadioRepeat(Algorithm):
    """Omission-Radio / Malicious-Radio over an arbitrary base schedule.

    Parameters
    ----------
    schedule:
        A valid fault-free :class:`~repro.radio.schedule.RadioSchedule`
        (its length is the ``opt`` benchmark the run pays ``· m`` over).
    source_message:
        The message ``Ms``.
    rule:
        :data:`ADOPT_ANY` (Omission-Radio) or :data:`ADOPT_MAJORITY`
        (Malicious-Radio).
    phase_length:
        The repetition count ``m``; omit and give ``p`` to use the
        exact calculators (omission or radio-malicious budget,
        depending on ``rule``).
    """

    def __init__(self, schedule: RadioSchedule, source_message: Any,
                 rule: str = ADOPT_MAJORITY,
                 phase_length: Optional[int] = None,
                 p: Optional[float] = None, default: Any = 0):
        super().__init__(schedule.topology, RADIO)
        if rule not in (ADOPT_ANY, ADOPT_MAJORITY):
            raise ValueError(
                f"rule must be {ADOPT_ANY!r} or {ADOPT_MAJORITY!r}, got {rule!r}"
            )
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        schedule.validate()
        self._base_schedule = schedule
        self._source_message = source_message
        self._rule = rule
        self._default = default
        if phase_length is None:
            if p is None:
                raise ValueError("give either phase_length or p")
            n = schedule.topology.order
            if rule == ADOPT_ANY:
                phase_length = omission_phase_length(n, p)
            else:
                phase_length = radio_malicious_phase_length(
                    n, p, schedule.topology.max_degree()
                )
        self._phase_length = check_positive_int(phase_length, "phase_length")
        simulation = schedule.simulate()
        self._informed_step = simulation.informed_step
        self._parent = simulation.parent

    # -- accessors -----------------------------------------------------
    @property
    def base_schedule(self) -> RadioSchedule:
        """The fault-free schedule being repeated."""
        return self._base_schedule

    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._base_schedule.source

    @property
    def source_message(self) -> Any:
        """The true source message ``Ms``."""
        return self._source_message

    @property
    def rule(self) -> str:
        """Adoption rule (``any`` = Omission-Radio, ``majority`` = Malicious-Radio)."""
        return self._rule

    @property
    def default(self) -> Any:
        """Fallback payload on silence or tie."""
        return self._default

    @property
    def phase_length(self) -> int:
        """The repetition count ``m``."""
        return self._phase_length

    @property
    def rounds(self) -> int:
        return self._base_schedule.length * self._phase_length

    def listening_series(self, node: int) -> int:
        """The series index during which ``node`` listens (-1 = source)."""
        return self._informed_step[node]

    def schedule_parent(self, node: int) -> Optional[int]:
        """``p(v)`` — the node ``v`` hears in the fault-free schedule."""
        return self._parent.get(node)

    def metadata(self):
        """Standard execution metadata for broadcast runs."""
        return {"source": self.source, "source_message": self._source_message}

    def protocol(self, node: int) -> Protocol:
        initial = self._source_message if node == self.source else None
        return RadioRepeatProtocol(self, node, initial)

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source twin for the impossibility adversaries."""
        return RadioRepeatProtocol(self, self.source, flipped_message)

    # -- batched execution ---------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`."""
        return (self._default, self._source_message)

    def batch_program(self, codec):
        """Vectorised program replaying the repeated base schedule once."""
        from repro.batchsim.programs import lift_radio_repeat

        return lift_radio_repeat(self, codec)
