"""Algorithm Simple-Malicious (Section 2.2, Theorems 2.2 and 2.4).

::

    The source v_1 transmits the source message Ms for m steps;
    For i = 2 to n do
      Phase i:
        - v_i computes M_i := the majority message among the messages
          received by v_i from its parent;
        - v_i transmits M_i for m consecutive steps.
        - All other nodes remain silent.

The schedule is identical to Simple-Omission; the difference is the
majority vote (received payloads can no longer be trusted) with default
value 0 when there is no majority.  The same algorithm runs in both
models but its analysis differs:

* message passing (Thm 2.2) — each reception is wrong with probability
  at most ``p``, so majority voting works iff ``p < 1/2``;
* radio (Thm 2.4) — a faulty neighbour can also *collide* with the
  parent's transmission, so a step yields the correct payload with
  probability at least ``q = (1-p)^{d+1}`` (closed neighbourhood
  fault-free), a wrong payload with probability at most ``p``, and
  silence otherwise; voting works iff ``p < (1-p)^{Δ+1}``.

In the radio model a listening node votes over *everything* it hears
during its parent's phase — it cannot tell which neighbour a payload
came from, which is exactly why out-of-turn malicious transmissions
are dangerous there.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.engine.protocol import MESSAGE_PASSING, RADIO, Protocol
from repro.core.parameters import (
    mp_malicious_phase_length,
    radio_malicious_phase_length,
)
from repro.core.tree_phase import TreePhaseAlgorithm, majority_or_default
from repro.graphs.bfs import SpanningTree
from repro.graphs.topology import Topology

__all__ = ["SimpleMalicious", "SimpleMaliciousProtocol"]


class SimpleMaliciousProtocol(Protocol):
    """Per-node program of Algorithm Simple-Malicious.

    State: the payloads heard during the parent's phase (``votes``).
    The relayed value ``M_i`` is the majority of the votes, computed on
    demand once the listening window has passed; the source relays
    ``Ms`` directly.
    """

    def __init__(self, algorithm: "SimpleMalicious", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._initial_message = initial_message
        self._votes: List[Any] = []

    @property
    def node(self) -> int:
        """The node this protocol instance runs on."""
        return self._node

    @property
    def votes(self) -> List[Any]:
        """Payloads collected during the listening window (copy)."""
        return list(self._votes)

    def decided_value(self) -> Any:
        """``M_i`` — the value this node relays and outputs."""
        if self._initial_message is not None:
            return self._initial_message
        return majority_or_default(self._votes, self._algorithm.default)

    def intent(self, round_index: int):
        algorithm = self._algorithm
        if not algorithm.schedule.in_window(self._node, round_index):
            return None
        return algorithm.wrap_payload(self._node, self.decided_value())

    def deliver(self, round_index: int, received) -> None:
        algorithm = self._algorithm
        if not algorithm.schedule.in_listening_window(self._node, round_index):
            return
        if algorithm.model == MESSAGE_PASSING:
            parent = algorithm.tree.parent[self._node]
            payload = received.get(parent)
        else:
            payload = received
        if payload is not None:
            self._votes.append(payload)

    def output(self) -> Any:
        return self.decided_value()


class SimpleMalicious(TreePhaseAlgorithm):
    """Algorithm Simple-Malicious, runnable in both models.

    ``phase_length`` may be omitted by giving ``p`` — the exact
    Theorem 2.2 (message passing) or Theorem 2.4 (radio; uses the
    network's maximum degree) phase length for the ``1/n²`` budget is
    then computed.  In the infeasible regime the calculators raise, so
    impossibility experiments must pass an explicit ``phase_length``.
    """

    #: Received payloads cannot be trusted, so the batched program
    #: majority-votes over the listening window, default on ties.
    _batch_adoption = "majority"

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 model: str, phase_length: Optional[int] = None,
                 p: Optional[float] = None,
                 tree: Optional[SpanningTree] = None, default: Any = 0):
        if phase_length is None:
            if p is None:
                raise ValueError("give either phase_length or p")
            if model == RADIO:
                phase_length = radio_malicious_phase_length(
                    topology.order, p, topology.max_degree()
                )
            else:
                phase_length = mp_malicious_phase_length(topology.order, p)
        super().__init__(
            topology, source, source_message, model, phase_length,
            tree=tree, default=default,
        )

    def _make_protocol(self, node: int, initial_message: Optional[Any]) -> Protocol:
        return SimpleMaliciousProtocol(self, node, initial_message)
