"""Compiling Kučera plans into executable round-by-round schedules.

A compiled plan assigns three kinds of *directives* to line positions
(positions double as tree depths when the plan is lifted to a tree):

* **transmit** — at round ``r``, the node at position ``i`` transmits
  its current bit for context ``ctx`` to position ``i+1``;
* **copy** — at the start of round ``r``, the node copies its bit for
  the enclosing context into a fresh repetition-execution context
  (the block source seeding execution ``i`` of a Repeat);
* **vote** — at the start of round ``r``, the node sets its bit for
  the enclosing context to the majority of its bits over the
  repetition's execution contexts (abstaining contexts — never set,
  e.g. after a limited-malicious message loss — are excluded).

*Contexts* are tuples of repetition-execution indices identifying which
copy of which nested Repeat a bit belongs to; the root context ``()``
holds each node's final answer.  Messages carry no context tags — the
schedule is globally known, so a receiver maps ``(position, round)``
back to the context, exactly as a real deterministic protocol would.

The compiler verifies the pipelining algebra: it is an error for two
transmissions to occupy the same ``(position, round)`` slot, which
would mean the [CO2] delay offsets failed to keep executions apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro._validation import check_probability
from repro.core.kucera.plan import Edge, Plan, PlanGuarantee, Repeat, Serial, guarantee

__all__ = ["ControlDirective", "CompiledPlan", "compile_plan"]

Context = Tuple[int, ...]


@dataclass(frozen=True)
class ControlDirective:
    """A copy or vote executed locally at the start of a round.

    ``kind`` is ``"copy"`` (read ``source_context``, write
    ``target_contexts[0]``) or ``"vote"`` (read all
    ``source_contexts``, write ``target_context``).
    """

    round_index: int
    position: int
    kind: str
    target_context: Context
    source_contexts: Tuple[Context, ...]

    def sort_key(self) -> Tuple[int, int, int]:
        """Execution order: by round; votes before copies; deeper votes first."""
        kind_priority = 0 if self.kind == "vote" else 1
        depth = -len(self.target_context) if self.kind == "vote" else 0
        return (self.round_index, kind_priority, depth)


@dataclass
class CompiledPlan:
    """A plan lowered to directives, ready to run on a line or tree.

    Attributes
    ----------
    guarantee:
        The exact :class:`PlanGuarantee` of the source plan.
    transmissions:
        ``position -> {round -> context}``: when and for which context
        each position transmits.
    receptions:
        ``position -> {round -> context}``: the reception map (always
        the transmission map of ``position - 1``).
    controls:
        ``position -> [ControlDirective]`` in execution order.
    """

    guarantee: PlanGuarantee
    transmissions: Dict[int, Dict[int, Context]] = field(default_factory=dict)
    receptions: Dict[int, Dict[int, Context]] = field(default_factory=dict)
    controls: Dict[int, List[ControlDirective]] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Line length the plan covers."""
        return self.guarantee.length

    @property
    def time(self) -> int:
        """Rounds of communication."""
        return self.guarantee.time

    def transmission_count(self) -> int:
        """Total number of scheduled transmissions."""
        return sum(len(by_round) for by_round in self.transmissions.values())

    def _add_transmit(self, round_index: int, position: int,
                      context: Context) -> None:
        by_round = self.transmissions.setdefault(position, {})
        if round_index in by_round:
            raise ValueError(
                f"pipelining conflict: position {position} already transmits "
                f"at round {round_index} (context {by_round[round_index]}, "
                f"new {context}) — invalid plan delays"
            )
        by_round[round_index] = context
        self.receptions.setdefault(position + 1, {})[round_index] = context

    def _add_control(self, directive: ControlDirective) -> None:
        self.controls.setdefault(directive.position, []).append(directive)

    def _finalize(self) -> None:
        for directives in self.controls.values():
            directives.sort(key=ControlDirective.sort_key)


def compile_plan(plan: Plan, p: float) -> CompiledPlan:
    """Lower ``plan`` to directives and verify the pipelining algebra."""
    check_probability(p, "p", allow_zero=True)
    compiled = CompiledPlan(guarantee=guarantee(plan, p))
    _emit(plan, compiled, base_position=0, start_round=0, context=())
    compiled._finalize()
    return compiled


def _emit(plan: Plan, compiled: CompiledPlan, base_position: int,
          start_round: int, context: Context) -> None:
    """Recursively emit directives for ``plan`` at the given offsets."""
    if isinstance(plan, Edge):
        compiled._add_transmit(start_round, base_position, context)
        return
    if isinstance(plan, Serial):
        sub = guarantee(plan.sub, 0.0)  # p irrelevant for length/time/delay
        for block in range(plan.rho):
            _emit(
                plan.sub, compiled,
                base_position=base_position + block * sub.length,
                start_round=start_round + block * sub.time,
                context=context,
            )
        return
    if isinstance(plan, Repeat):
        sub = guarantee(plan.sub, 0.0)
        execution_contexts: List[Context] = []
        for execution in range(plan.kappa):
            execution_context = context + (execution,)
            execution_contexts.append(execution_context)
            execution_start = start_round + execution * sub.delay
            # Seed: the block source carries the enclosing context's bit
            # into this execution.
            compiled._add_control(ControlDirective(
                round_index=execution_start,
                position=base_position,
                kind="copy",
                target_context=execution_context,
                source_contexts=(context,),
            ))
            _emit(
                plan.sub, compiled,
                base_position=base_position,
                start_round=execution_start,
                context=execution_context,
            )
        # Votes: every node of the block folds its kappa execution bits
        # back into the enclosing context once the block completes.
        # (The paper votes at the last node only and notes the extension
        # to every intermediate node is readily verified; voting at every
        # node is that extension.)
        vote_round = start_round + sub.time + (plan.kappa - 1) * sub.delay
        for position in range(base_position, base_position + sub.length + 1):
            compiled._add_control(ControlDirective(
                round_index=vote_round,
                position=position,
                kind="vote",
                target_context=context,
                source_contexts=tuple(execution_contexts),
            ))
        return
    raise TypeError(f"not a plan: {plan!r}")
