"""Choosing Kučera plan parameters.

The paper constructs its Theorem 3.2 algorithm "by carefully combining
the two composition rules using suitable choices for the parameters
``ρ`` and ``κ``".  This planner makes those choices numerically:

1. **Boost** the raw edge (failure ``p``) with one [CO2] repetition to
   a working failure level ``q_work`` chosen so the level recurrence
   contracts (for the default ``ρ = 4, κ = 3``:
   ``Q ↦ tail₃(1-(1-Q)⁴) ≈ 12·Q²`` contracts below ``1/48``).
2. **Grow** the line geometrically: alternate ``Serial(ρ)`` and
   ``Repeat(κ)`` until the plan covers the requested length.  Because
   ``ρ > κ``, total time stays ``O(length)`` while the failure bound
   *squares* every level — the ``e^{-Ω(L^c)}`` of Lemma 3.2 with
   ``c = log(κ/2)/log(ρ)``; picking larger ``κ, ρ = κ+1`` pushes ``c``
   toward 1, i.e. ``α = 1/c`` toward 1 in Theorem 3.2.
3. **Final boost**: extra [CO2] repetitions until the exact computed
   failure clears the caller's target (rarely needed — the squaring
   usually lands far below it).

Everything is evaluated with the exact algebra of
:mod:`repro.core.kucera.plan`, so the returned plan's guarantee is a
certificate, not an asymptotic promise.
"""

from __future__ import annotations

import math
from typing import Optional

from repro._validation import check_positive_int, check_probability
from repro.analysis.chernoff import majority_error_probability
from repro.core.kucera.plan import Edge, Plan, PlanGuarantee, Repeat, Serial, guarantee

__all__ = ["build_plan", "working_failure_level", "alpha_exponent"]


def alpha_exponent(rho: int, kappa: int) -> float:
    """The ``α`` of Theorem 3.2 achieved by constants ``(ρ, κ)``.

    The per-level failure exponent grows by ``κ/2`` while length grows
    by ``ρ``, giving failure ``e^{-Ω(L^c)}`` with
    ``c = log(κ/2)/log(ρ)`` and hence time ``O(D + log^α n)`` for
    ``α = 1/c``.
    """
    check_positive_int(rho, "rho")
    check_positive_int(kappa, "kappa")
    if kappa <= 2:
        raise ValueError(f"kappa must exceed 2 for a contracting level, got {kappa}")
    return math.log(rho) / math.log(kappa / 2.0)


def working_failure_level(rho: int, kappa: int) -> float:
    """A failure level at which the ``(ρ, κ)`` level map contracts.

    The level map is ``Q ↦ tailκ(1-(1-Q)^ρ) <= C(κ,⌈κ/2⌉)·(ρQ)^{κ/2}``;
    requiring the image to be at most ``Q/2`` at the working level gives
    a safe (conservative) closed form.
    """
    check_positive_int(rho, "rho")
    check_positive_int(kappa, "kappa")
    binom = math.comb(kappa, math.ceil(kappa / 2))
    half = math.ceil(kappa / 2)
    # Solve binom * (rho*q)^half <= q/2  =>  q^(half-1) <= 1/(2*binom*rho^half)
    if half < 2:
        raise ValueError(f"kappa {kappa} too small for a contracting level")
    level = (1.0 / (2.0 * binom * rho ** half)) ** (1.0 / (half - 1))
    return min(level, 0.05)


def _boost_repetitions(p: float, target: float) -> int:
    """Minimal odd ``κ0`` with ``majority_error(κ0, p) <= target``."""
    if p <= target:
        return 1
    kappa = 1
    while majority_error_probability(kappa, p) > target:
        kappa += 2
        if kappa > 1 << 14:
            raise RuntimeError(
                f"cannot boost edge failure {p} to {target}; p too close to 1/2"
            )
    return kappa


def build_plan(min_length: int, p: float, failure_target: float,
               rho: int = 4, kappa: int = 3) -> Plan:
    """Build a plan of length >= ``min_length`` with failure <= target.

    Parameters
    ----------
    min_length:
        The line length (tree height) the plan must cover.
    p:
        Per-transmission failure probability; must be below 1/2
        (Theorem 3.2's feasibility constraint).
    failure_target:
        Required bound on the plan's end-to-end failure probability.
    rho, kappa:
        The [CO1]/[CO2] constants; ``rho > kappa`` keeps time linear,
        larger values trade constant factors for a smaller Theorem 3.2
        exponent ``α`` (see :func:`alpha_exponent`).
    """
    min_length = check_positive_int(min_length, "min_length")
    p = check_probability(p, "p", allow_zero=True)
    failure_target = check_probability(failure_target, "failure_target",
                                       allow_zero=False)
    if p >= 0.5:
        raise ValueError(
            f"Kučera plans require p < 1/2 (Theorem 3.2 feasibility), got {p}"
        )
    if rho <= kappa:
        raise ValueError(
            f"need rho > kappa for linear time, got rho={rho}, kappa={kappa}"
        )
    q_work = working_failure_level(rho, kappa)
    kappa0 = _boost_repetitions(p, q_work)
    plan: Plan = Edge() if kappa0 == 1 else Repeat(Edge(), kappa0)
    while guarantee(plan, p).length < min_length:
        plan = Repeat(Serial(plan, rho), kappa)
    while guarantee(plan, p).failure > failure_target:
        plan = Repeat(plan, 3)
    return plan
