"""The Theorem 3.2 broadcast algorithm: Kučera plans lifted to trees.

"Find a breadth-first spanning tree ``T`` for the network centrally as
before ... All nodes of the tree ``T`` perform the algorithm from [23]
on each branch.  Whenever a node has more than one child in the tree,
it transmits to all its children the message that it is instructed to
transmit along the line in the original algorithm."

The lifting is literal: a compiled plan's directives are indexed by
*line position*, and a tree node at depth ``d`` executes the
position-``d`` directives — transmitting to all of its children and
accepting receptions only from its parent.  Every root-to-leaf branch
thus runs the exact line algorithm (branches shorter than the compiled
length simply have nobody to relay to), which is the reduction to the
padded tree ``T'`` in the paper's analysis.

Message-passing only, and aimed at the *limited malicious* model
(Theorem 3.2) or its flip-model core (Lemma 3.2): the schedule-known
reception map ignores out-of-turn deliveries, but an adversary who can
speak out of turn could inject payloads into legitimate reception
slots, which is precisely why the theorem needs the limited model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro._validation import check_node
from repro.analysis.chernoff import union_bound_target
from repro.engine.protocol import MESSAGE_PASSING, Algorithm, Protocol
from repro.core.kucera.compiler import CompiledPlan, Context, compile_plan
from repro.core.kucera.plan import Plan, describe_plan
from repro.core.kucera.planner import build_plan
from repro.core.tree_phase import majority_or_default
from repro.graphs.bfs import SpanningTree, bfs_tree
from repro.graphs.topology import Topology

__all__ = ["KuceraBroadcast", "KuceraProtocol"]


class KuceraProtocol(Protocol):
    """Per-node program: execute the position-``depth`` plan directives."""

    def __init__(self, algorithm: "KuceraBroadcast", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._position = algorithm.tree.depth[node]
        self._bits: Dict[Context, Any] = {}
        if initial_message is not None:
            self._bits[()] = initial_message
        compiled = algorithm.compiled
        self._transmit_map = compiled.transmissions.get(self._position, {})
        self._reception_map = compiled.receptions.get(self._position, {})
        self._controls = compiled.controls.get(self._position, [])
        self._next_control = 0

    @property
    def position(self) -> int:
        """The line position this node plays (its tree depth)."""
        return self._position

    def bit(self, context: Context = ()) -> Any:
        """Current bit for a context (``None`` if never set)."""
        return self._bits.get(context)

    def _apply_controls(self, up_to_round: Optional[int]) -> None:
        """Run copy/vote directives scheduled at rounds <= ``up_to_round``."""
        while self._next_control < len(self._controls):
            directive = self._controls[self._next_control]
            if up_to_round is not None and directive.round_index > up_to_round:
                return
            if directive.kind == "copy":
                source = directive.source_contexts[0]
                if source in self._bits:
                    self._bits[directive.target_context] = self._bits[source]
            else:  # vote
                votes = [
                    self._bits[context]
                    for context in directive.source_contexts
                    if context in self._bits
                ]
                if votes:
                    self._bits[directive.target_context] = majority_or_default(
                        votes, self._algorithm.default
                    )
            self._next_control += 1

    def intent(self, round_index: int):
        self._apply_controls(round_index)
        context = self._transmit_map.get(round_index)
        if context is None:
            return None
        children = self._algorithm.tree.children(self._node)
        if not children:
            return None
        payload = self._bits.get(context, self._algorithm.default)
        return {child: payload for child in children}

    def deliver(self, round_index: int, received) -> None:
        context = self._reception_map.get(round_index)
        if context is None:
            return
        parent = self._algorithm.tree.parent[self._node]
        if parent is None:
            return
        payload = received.get(parent)
        if payload is not None:
            self._bits[context] = payload

    def output(self) -> Any:
        self._apply_controls(None)
        return self._bits.get((), self._algorithm.default)


class KuceraBroadcast(Algorithm):
    """Theorem 3.2's ``O(D + log^α n)`` algorithm (message passing).

    Parameters
    ----------
    topology, source, source_message:
        The broadcast instance.
    p:
        Per-transmission failure probability (must be < 1/2).
    plan:
        Explicit plan override; by default the planner builds one of
        length >= the BFS height with per-node failure budget
        ``(1/n²) / (height + 1)``.
    rho, kappa:
        Planner constants (see :func:`repro.core.kucera.planner.build_plan`).
    """

    def __init__(self, topology: Topology, source: int, source_message: Any,
                 p: float, plan: Optional[Plan] = None,
                 rho: int = 4, kappa: int = 3,
                 failure_target: Optional[float] = None,
                 tree: Optional[SpanningTree] = None, default: Any = 0):
        super().__init__(topology, MESSAGE_PASSING)
        self._source = check_node(source, topology.order, "source")
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        self._source_message = source_message
        self._default = default
        if tree is None:
            tree = bfs_tree(topology, self._source)
        elif tree.root != self._source:
            raise ValueError(
                f"tree is rooted at {tree.root}, not at source {self._source}"
            )
        self._tree = tree
        height = max(tree.height, 1)
        if plan is None:
            if failure_target is None:
                failure_target = union_bound_target(topology.order) / (height + 1)
            plan = build_plan(height, p, failure_target, rho=rho, kappa=kappa)
        self._plan = plan
        self._compiled = compile_plan(plan, p)
        if self._compiled.length < tree.height:
            raise ValueError(
                f"plan covers length {self._compiled.length} but the tree "
                f"has height {tree.height}"
            )

    # -- accessors -----------------------------------------------------
    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._source

    @property
    def source_message(self) -> Any:
        """The true source message."""
        return self._source_message

    @property
    def default(self) -> Any:
        """Fallback payload for unset bits / tied votes."""
        return self._default

    @property
    def tree(self) -> SpanningTree:
        """The BFS tree whose branches run the line algorithm."""
        return self._tree

    @property
    def plan(self) -> Plan:
        """The composition plan in force."""
        return self._plan

    @property
    def compiled(self) -> CompiledPlan:
        """The compiled directive schedule."""
        return self._compiled

    @property
    def rounds(self) -> int:
        return self._compiled.time

    def describe(self) -> str:
        g = self._compiled.guarantee
        return (f"KuceraBroadcast(n={self.topology.order}, "
                f"plan={describe_plan(self._plan)}, time={g.time}, "
                f"delay={g.delay}, Q={g.failure:.3g})")

    def metadata(self):
        """Standard execution metadata for broadcast runs."""
        return {"source": self._source, "source_message": self._source_message}

    def protocol(self, node: int) -> Protocol:
        node = check_node(node, self.topology.order)
        initial = self._source_message if node == self._source else None
        return KuceraProtocol(self, node, initial)

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source twin for the impossibility adversaries."""
        return KuceraProtocol(self, self._source, flipped_message)

    # -- batched execution -------------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`."""
        return (self._default, self._source_message)

    def batch_program(self, codec):
        """Vectorised compiled-plan program."""
        from repro.batchsim.programs import PlanLift

        return PlanLift(self, codec)
