"""Kučera's composition algorithm (Lemma 3.2) lifted to trees (Thm 3.2)."""

from repro.core.kucera.algorithm import KuceraBroadcast, KuceraProtocol
from repro.core.kucera.compiler import CompiledPlan, ControlDirective, compile_plan
from repro.core.kucera.plan import (
    Edge,
    Plan,
    PlanGuarantee,
    Repeat,
    Serial,
    describe_plan,
    guarantee,
)
from repro.core.kucera.planner import alpha_exponent, build_plan, working_failure_level

__all__ = [
    "Edge",
    "Serial",
    "Repeat",
    "Plan",
    "PlanGuarantee",
    "guarantee",
    "describe_plan",
    "compile_plan",
    "CompiledPlan",
    "ControlDirective",
    "build_plan",
    "working_failure_level",
    "alpha_exponent",
    "KuceraBroadcast",
    "KuceraProtocol",
]
