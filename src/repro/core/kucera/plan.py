"""The Kučera composition calculus: plans and their guarantees.

Lemma 3.2 rests on Kučera's line algorithm [23], which the paper
describes through exactly two composition rules over the predicate
``A_p(n, τ, δ, Q)`` ("on the line of length ``n``, with per-
transmission failure probability ``p``, there is a broadcast algorithm
of time ``τ``, delay ``δ`` and failure probability at most ``Q``"):

* **[CO1] serial composition** — run the block algorithm on ``ρ``
  consecutive copies of the line, the ``j``-th copy starting at time
  ``j·τ``:  ``A_p(n,τ,δ,Q) ⟹ A_p(ρn, ρτ, δ, 1-(1-Q)^ρ)``.
* **[CO2] repetition** — run the block algorithm ``κ`` times with
  delay ``δ`` between successive (pipelined) executions, the last node
  taking the majority bit:  ``A_p(n,τ,δ,Q) ⟹ A_p(n, τ+(κ-1)δ, κδ, Q')``
  with ``Q' = Σ_{j≥κ/2} C(κ,j) Q^j (1-Q)^{κ-j}``.

A *plan* is a term over ``Edge | Serial(sub, ρ) | Repeat(sub, κ)``.
This module computes the exact ``(length, time, delay, Q)`` algebra of
a plan; :mod:`repro.core.kucera.compiler` turns a plan into an
executable round-by-round schedule, and tests verify that the compiled
execution's timing matches this algebra exactly.

``delay`` follows the paper's definition: the maximum time span during
which any single node is *receiving* within the block — which is also
the pipelining offset that keeps repeated executions from colliding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro._validation import check_positive_int, check_probability
from repro.analysis.chernoff import binomial_tail_ge

__all__ = ["Edge", "Serial", "Repeat", "Plan", "PlanGuarantee", "guarantee", "describe_plan"]


@dataclass(frozen=True)
class Edge:
    """A single transmission across a single edge: ``A_p(1, 1, 1, p)``."""


@dataclass(frozen=True)
class Serial:
    """[CO1] — ``rho`` copies of ``sub`` run back to back."""

    sub: "Plan"
    rho: int

    def __post_init__(self) -> None:
        check_positive_int(self.rho, "rho")
        if self.rho < 2:
            raise ValueError(f"Serial needs rho >= 2, got {self.rho}")


@dataclass(frozen=True)
class Repeat:
    """[CO2] — ``kappa`` pipelined executions of ``sub`` + majority votes.

    ``kappa`` should be odd so the majority is never tied.
    """

    sub: "Plan"
    kappa: int

    def __post_init__(self) -> None:
        check_positive_int(self.kappa, "kappa")
        if self.kappa % 2 == 0:
            raise ValueError(f"Repeat needs odd kappa, got {self.kappa}")


Plan = Union[Edge, Serial, Repeat]


@dataclass(frozen=True)
class PlanGuarantee:
    """The exact ``A_p(length, time, delay, failure)`` tuple of a plan.

    ``failure`` bounds the probability that the *last* node of the line
    ends with a wrong (or missing) bit; every intermediate node is the
    last node of a serial prefix of the plan and enjoys essentially the
    same bound, so per-node budgeting multiplies by the line length.
    """

    length: int
    time: int
    delay: int
    failure: float


def guarantee(plan: Plan, p: float) -> PlanGuarantee:
    """Evaluate the [CO1]/[CO2] algebra exactly (exact binomial tails)."""
    p = check_probability(p, "p", allow_zero=True)
    if isinstance(plan, Edge):
        return PlanGuarantee(length=1, time=1, delay=1, failure=p)
    if isinstance(plan, Serial):
        sub = guarantee(plan.sub, p)
        failure = 1.0 - (1.0 - sub.failure) ** plan.rho
        return PlanGuarantee(
            length=plan.rho * sub.length,
            time=plan.rho * sub.time,
            delay=sub.delay,
            failure=failure,
        )
    if isinstance(plan, Repeat):
        sub = guarantee(plan.sub, p)
        failure = binomial_tail_ge(plan.kappa, plan.kappa / 2.0, sub.failure)
        return PlanGuarantee(
            length=sub.length,
            time=sub.time + (plan.kappa - 1) * sub.delay,
            delay=plan.kappa * sub.delay,
            failure=failure,
        )
    raise TypeError(f"not a plan: {plan!r}")


def describe_plan(plan: Plan) -> str:
    """Compact human-readable plan term, e.g. ``R5(S4(R3(E)))``."""
    if isinstance(plan, Edge):
        return "E"
    if isinstance(plan, Serial):
        return f"S{plan.rho}({describe_plan(plan.sub)})"
    if isinstance(plan, Repeat):
        return f"R{plan.kappa}({describe_plan(plan.sub)})"
    raise TypeError(f"not a plan: {plan!r}")
