"""Core algorithms: the paper's broadcasting protocols."""

from repro.core.flooding import (
    FastFlooding,
    FastFloodingProtocol,
    flooding_line_length,
    flooding_rounds,
)
from repro.core.hello import (
    HelloProtocolAlgorithm,
    HelloReceiver,
    HelloSender,
    hello_success_probability,
)
from repro.core.labels import (
    PrimeScheduleBroadcast,
    RoundRobinBroadcast,
    first_primes,
)
from repro.core.parameters import (
    mp_malicious_phase_length,
    omission_phase_length,
    radio_malicious_phase_length,
    repetitions_for_signed_majority,
    signed_majority_error,
    theoretical_omission_constant,
)
from repro.core.radio_repeat import (
    ADOPT_ANY,
    ADOPT_MAJORITY,
    RadioRepeat,
    RadioRepeatProtocol,
)
from repro.core.simple_malicious import SimpleMalicious, SimpleMaliciousProtocol
from repro.core.simple_omission import SimpleOmission, SimpleOmissionProtocol
from repro.core.tree_phase import (
    PhaseSchedule,
    TreePhaseAlgorithm,
    majority_or_default,
)
from repro.core.windowed import WindowedMalicious, WindowedMaliciousProtocol
from repro.core import kucera
from repro.core.kucera import KuceraBroadcast

__all__ = [
    "SimpleOmission",
    "SimpleOmissionProtocol",
    "SimpleMalicious",
    "SimpleMaliciousProtocol",
    "FastFlooding",
    "FastFloodingProtocol",
    "flooding_rounds",
    "flooding_line_length",
    "KuceraBroadcast",
    "kucera",
    "RadioRepeat",
    "RadioRepeatProtocol",
    "ADOPT_ANY",
    "ADOPT_MAJORITY",
    "HelloProtocolAlgorithm",
    "HelloSender",
    "HelloReceiver",
    "hello_success_probability",
    "WindowedMalicious",
    "WindowedMaliciousProtocol",
    "RoundRobinBroadcast",
    "PrimeScheduleBroadcast",
    "first_primes",
    "TreePhaseAlgorithm",
    "PhaseSchedule",
    "majority_or_default",
    "omission_phase_length",
    "mp_malicious_phase_length",
    "radio_malicious_phase_length",
    "signed_majority_error",
    "repetitions_for_signed_majority",
    "theoretical_omission_constant",
]
