"""The "hello" timing-channel protocol (end of Section 2.2.2).

The proof of Theorem 2.3 "relies strongly on the assumption that
failures can cause the link to transmit out of turn".  Without that
power — the *limited malicious* model — the 1/2 threshold evaporates:
a sender can almost-safely convey a bit for *any* ``p < 1`` by encoding
it in the timing pattern of otherwise meaningless transmissions:

* ``M = 0`` — transmit "hello" on every step ``1 .. 2m``;
* ``M = 1`` — transmit "hello" only on the even steps ``2, 4, .., 2m``.

The receiver decodes 0 iff it heard transmissions in two consecutive
rounds.  Since a limited-malicious failure can only *remove* (or
corrupt the content of) a transmission, a sender of 1 never produces
two consecutive audible rounds, so 1 is always decoded correctly; a
sender of 0 fails only when no two consecutive rounds both survive,
which dies off exponentially in ``m`` (Chernoff in the paper; computed
exactly here by the standard no-two-consecutive-successes recurrence).
"""

from __future__ import annotations

from typing import Any, Optional

from repro._validation import check_bit, check_positive_int, check_probability
from repro.engine.protocol import MESSAGE_PASSING, RADIO, Algorithm, Protocol
from repro.graphs.topology import Topology

__all__ = [
    "HelloProtocolAlgorithm",
    "HelloSender",
    "HelloReceiver",
    "hello_success_probability",
]

HELLO = "hello"
"""The (content-irrelevant) payload the sender transmits."""


def hello_success_probability(p: float, m: int, message: int) -> float:
    """Exact success probability of the hello protocol.

    For ``message = 1`` the protocol never errs.  For ``message = 0``
    it errs exactly when no two consecutive of the ``2m`` rounds are
    both fault-free; with per-round survival ``q = 1 - p`` the
    no-two-consecutive-successes probability follows the recurrence
    ``A_k = p·A_{k-1} + q·p·A_{k-2}`` (``A_0 = 1``, ``A_1 = 1``).
    """
    p = check_probability(p, "p", allow_zero=True)
    m = check_positive_int(m, "m")
    message = check_bit(message, "message")
    if message == 1:
        return 1.0
    q = 1.0 - p
    rounds = 2 * m
    a_prev2, a_prev1 = 1.0, 1.0
    for _ in range(2, rounds + 1):
        a_prev2, a_prev1 = a_prev1, p * a_prev1 + q * p * a_prev2
    return 1.0 - a_prev1


class HelloSender(Protocol):
    """Sender: all rounds for 0, odd-indexed (0-based) rounds for 1.

    The paper's steps are 1-based ("transmit on the even steps
    2, 4, ..."), so 0-based round ``r`` is transmitted for ``M = 1``
    iff ``r`` is odd.
    """

    def __init__(self, algorithm: "HelloProtocolAlgorithm", message: int):
        self._algorithm = algorithm
        self._message = check_bit(message, "message")

    def intent(self, round_index: int):
        if self._message == 0 or round_index % 2 == 1:
            if self._algorithm.model == MESSAGE_PASSING:
                return {self._algorithm.receiver: HELLO}
            return HELLO
        return None

    def deliver(self, round_index: int, received) -> None:
        pass  # the sender never listens

    def output(self) -> Any:
        return self._message


class HelloReceiver(Protocol):
    """Receiver: decode 0 iff transmissions arrived in consecutive rounds."""

    def __init__(self, algorithm: "HelloProtocolAlgorithm"):
        self._algorithm = algorithm
        self._heard_previous = False
        self._decoded_zero = False

    def intent(self, round_index: int):
        return None  # the receiver never transmits

    def deliver(self, round_index: int, received) -> None:
        if self._algorithm.model == MESSAGE_PASSING:
            heard = bool(received)
        else:
            heard = received is not None
        if heard and self._heard_previous:
            self._decoded_zero = True
        self._heard_previous = heard

    def output(self) -> Any:
        return 0 if self._decoded_zero else 1


class HelloProtocolAlgorithm(Algorithm):
    """The 2-node timing-channel broadcast, in either model.

    Parameters
    ----------
    topology:
        Must be the 2-node graph (:func:`repro.graphs.builders.two_node`).
    message:
        The bit to broadcast.
    m:
        Half the number of rounds (the protocol runs ``2m`` rounds).
    model:
        Either model works — with two nodes and a silent receiver the
        radio medium never collides.
    """

    def __init__(self, topology: Topology, message: int, m: int,
                 model: str = MESSAGE_PASSING,
                 sender: int = 0, receiver: int = 1):
        super().__init__(topology, model)
        if topology.order != 2 or not topology.has_edge(sender, receiver):
            raise ValueError(
                "the hello protocol runs on the 2-node graph of Theorem 2.3"
            )
        self._message = check_bit(message, "message")
        self._m = check_positive_int(m, "m")
        self._sender = sender
        self._receiver = receiver

    @property
    def sender(self) -> int:
        """The sender node ``s``."""
        return self._sender

    @property
    def receiver(self) -> int:
        """The receiver node ``v``."""
        return self._receiver

    @property
    def source_message(self) -> int:
        """The bit being conveyed."""
        return self._message

    @property
    def m(self) -> int:
        """The protocol parameter ``m`` (rounds = ``2m``)."""
        return self._m

    @property
    def rounds(self) -> int:
        return 2 * self._m

    def metadata(self):
        """Standard execution metadata for broadcast runs."""
        return {"source": self._sender, "source_message": self._message}

    def protocol(self, node: int) -> Protocol:
        if node == self._sender:
            return HelloSender(self, self._message)
        return HelloReceiver(self)

    def counterfactual_source(self, flipped_message: Any) -> Protocol:
        """Source twin (lets the equalizing adversary attack it in tests)."""
        return HelloSender(self, flipped_message)

    # -- batched execution -------------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`.

        Both decodable bits are listed (the receiver *outputs* a bit
        even though only ``HELLO`` is ever transmitted).
        """
        return (0, 1, HELLO)

    def batch_program(self, codec):
        """Vectorised timing-channel program."""
        from repro.batchsim.programs import HelloProgram

        return HelloProgram(self, codec)
