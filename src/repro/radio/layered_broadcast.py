"""Explicit layer-2 schedule broadcast on the layered graph ``G(m)``.

The engine-executable counterpart of the Lemma 3.4 / Theorem 3.3
experiments: the source transmits alone for ``source_steps`` rounds
(every bit node hears any non-faulty one), then round ``t`` activates
the layer-2 bit nodes listed in ``steps[t]``; a layer-3 value node
adopts the payload of any round in which exactly one of its bit
neighbours survives omission.  Uninformed bit nodes still occupy the
medium with the default payload when scheduled — the pessimistic
reading the lower-bound analysis (and the vectorised
:func:`repro.fastsim.layered.sample_layered_omission` sampler, whose
engine agreement is pinned in ``tests/test_fastsim_agreement.py``)
assumes.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Set

from repro._validation import check_positive_int
from repro.engine.protocol import RADIO, Algorithm, Protocol
from repro.graphs.layered import LayeredGraph

__all__ = ["LayeredScheduleBroadcast"]


class LayeredScheduleProtocol(Protocol):
    """Radio program of one node under an explicit layered schedule."""

    def __init__(self, algorithm: "LayeredScheduleBroadcast", node: int,
                 initial_message: Optional[Any]):
        self._algorithm = algorithm
        self._node = node
        self._message = initial_message

    def intent(self, round_index: int):
        algorithm = self._algorithm
        if self._node == algorithm.graph.source:
            if round_index < algorithm.source_steps:
                return algorithm.source_message
            return None
        if round_index < algorithm.source_steps:
            return None
        step = algorithm.step_nodes[round_index - algorithm.source_steps]
        if self._node in step:
            # An uninformed bit node still transmits (the default), so
            # it occupies the medium exactly as the sampler assumes.
            return self._message if self._message is not None else \
                self._algorithm.default
        return None

    def deliver(self, round_index: int, received) -> None:
        if self._message is None and received is not None:
            self._message = received

    def output(self) -> Any:
        if self._message is not None:
            return self._message
        return self._algorithm.default


class LayeredScheduleBroadcast(Algorithm):
    """Source phase + explicit layer-2 steps on ``G(m)``, radio model.

    Parameters
    ----------
    graph:
        The layered graph ``G(m)``.
    steps:
        Layer-2 transmitter sets as 1-based bit *positions*, one set
        per step — the shape the schedule analyses and the fastsim
        sampler consume.
    source_steps:
        Dedicated source rounds before the layer-2 steps begin.
    source_message, default:
        The broadcast payload and the uninformed fallback.
    """

    def __init__(self, graph: LayeredGraph, steps: Sequence[Set[int]],
                 source_steps: int = 1, source_message: Any = 1,
                 default: Any = 0):
        super().__init__(graph.topology, RADIO)
        if source_message is None:
            raise ValueError("source_message must not be None (None is silence)")
        self.graph = graph
        #: The schedule in bit positions (what the sampler consumes).
        self.step_positions: List[Set[int]] = [set(step) for step in steps]
        #: The same schedule resolved to topology node ids.
        self.step_nodes: List[Set[int]] = [
            {graph.bit_node(position) for position in step} for step in steps
        ]
        self.source_steps = check_positive_int(source_steps, "source_steps")
        self.source_message = source_message
        self.default = default

    @property
    def rounds(self) -> int:
        return self.source_steps + len(self.step_nodes)

    def protocol(self, node: int) -> Protocol:
        initial = self.source_message if node == self.graph.source else None
        return LayeredScheduleProtocol(self, node, initial)

    def metadata(self):
        return {
            "source": self.graph.source,
            "source_message": self.source_message,
        }

    # -- batched execution ---------------------------------------------
    def batch_payloads(self):
        """Payload alphabet for :mod:`repro.batchsim`."""
        return (self.default, self.source_message)

    def batch_program(self, codec):
        """Vectorised program replaying the explicit step list once."""
        from repro.batchsim.programs import lift_layered_schedule

        return lift_layered_schedule(self, codec)
