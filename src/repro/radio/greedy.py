"""Greedy fault-free radio broadcast scheduling for arbitrary graphs.

Computing the optimal radio broadcast schedule is NP-hard in general,
so — like the paper, which simply takes "an optimal fault-free
broadcasting algorithm A for a given graph" as a benchmark — the
library provides exact search for small graphs
(:mod:`repro.radio.exact`) and this polynomial greedy heuristic for
everything else.  The greedy schedule upper-bounds ``opt`` and is what
the Theorem 3.4 experiments feed into the repetition algorithms.

Per step the heuristic grows a transmitter set: candidates (informed
nodes with uninformed neighbours) are tried in decreasing order of
exclusive coverage, and a candidate is kept only if adding it strictly
increases the number of newly informed nodes under true collision
semantics.  Progress is guaranteed: a single transmitter always
informs all of its uninformed neighbours.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro._validation import check_node
from repro.graphs.topology import Topology
from repro.radio.schedule import RadioSchedule

__all__ = ["greedy_schedule"]


def _newly_informed(topology: Topology, informed: Set[int],
                    transmitters: Set[int]) -> Set[int]:
    """Uninformed nodes that hear exactly one transmitter."""
    fresh: Set[int] = set()
    for node in topology.nodes:
        if node in informed or node in transmitters:
            continue
        speaking = [
            neighbour for neighbour in topology.neighbors(node)
            if neighbour in transmitters
        ]
        if len(speaking) == 1:
            fresh.add(node)
    return fresh


def greedy_schedule(topology: Topology, source: int) -> RadioSchedule:
    """Build a valid broadcast schedule greedily (see module docstring)."""
    source = check_node(source, topology.order, "source")
    if not topology.is_connected():
        raise ValueError(
            f"graph {topology.name!r} is not connected; broadcast impossible"
        )
    informed: Set[int] = {source}
    steps: List[List[int]] = []
    while len(informed) < topology.order:
        candidates = [
            node for node in sorted(informed)
            if any(
                neighbour not in informed
                for neighbour in topology.neighbors(node)
            )
        ]
        # Exclusive coverage: uninformed neighbours reachable only via
        # this candidate — a proxy for how urgently it must speak alone.
        coverage: Dict[int, int] = {
            node: sum(
                1 for neighbour in topology.neighbors(node)
                if neighbour not in informed
            )
            for node in candidates
        }
        candidates.sort(key=lambda node: (-coverage[node], node))
        chosen: Set[int] = set()
        best_fresh: Set[int] = set()
        for candidate in candidates:
            trial = chosen | {candidate}
            fresh = _newly_informed(topology, informed, trial)
            if len(fresh) > len(best_fresh):
                chosen = trial
                best_fresh = fresh
        if not best_fresh:
            # Cannot happen on a connected graph: the highest-coverage
            # candidate alone informs all its uninformed neighbours.
            raise RuntimeError(
                f"greedy scheduler stalled with {len(informed)} of "
                f"{topology.order} nodes informed"
            )
        steps.append(sorted(chosen))
        informed |= best_fresh
    schedule = RadioSchedule(topology, source, steps)
    schedule.validate()
    return schedule
