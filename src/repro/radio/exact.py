"""Exact optimal radio broadcast scheduling (small graphs).

Two exact tools:

* :func:`optimal_schedule` — breadth-first search over informed-set
  states for arbitrary small graphs (the transmitter set per step
  ranges over subsets of the *useful* informed nodes).  Exponential,
  gated by explicit size limits.
* :func:`layered_min_layer2_steps` — the specialised exhaustive search
  used to verify Lemma 3.3: on ``G(m)``, after the source's one
  transmission, how many layer-2 steps are needed to inform all of
  layer 3?  Coverage by a set sequence is order-independent, so the
  search ranges over *multisets* of layer-2 subsets, which keeps
  ``m <= 5`` comfortably exhaustive.
"""

from __future__ import annotations

from itertools import combinations, combinations_with_replacement
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro._validation import check_node, check_positive_int
from repro.graphs.layered import LayeredGraph
from repro.graphs.topology import Topology
from repro.radio.schedule import RadioSchedule

__all__ = [
    "optimal_schedule",
    "optimal_broadcast_time",
    "layered_min_layer2_steps",
]

_MAX_EXACT_NODES = 16
_MAX_USEFUL_TRANSMITTERS = 12


def _useful_subsets(topology: Topology,
                    informed: FrozenSet[int]) -> List[FrozenSet[int]]:
    """All non-empty subsets of informed nodes with uninformed neighbours."""
    useful = [
        node for node in sorted(informed)
        if any(
            neighbour not in informed for neighbour in topology.neighbors(node)
        )
    ]
    if len(useful) > _MAX_USEFUL_TRANSMITTERS:
        raise ValueError(
            f"exact search infeasible: {len(useful)} useful transmitters "
            f"(limit {_MAX_USEFUL_TRANSMITTERS})"
        )
    subsets: List[FrozenSet[int]] = []
    for size in range(1, len(useful) + 1):
        subsets.extend(
            frozenset(combo) for combo in combinations(useful, size)
        )
    return subsets


def _advance(topology: Topology, informed: FrozenSet[int],
             transmitters: FrozenSet[int]) -> FrozenSet[int]:
    """Informed set after one step with the given transmitters."""
    fresh = set()
    for node in topology.nodes:
        if node in informed or node in transmitters:
            continue
        speaking = [
            neighbour for neighbour in topology.neighbors(node)
            if neighbour in transmitters
        ]
        if len(speaking) == 1:
            fresh.add(node)
    return informed | frozenset(fresh)


def optimal_schedule(topology: Topology, source: int,
                     max_steps: Optional[int] = None) -> RadioSchedule:
    """The shortest fault-free broadcast schedule, by exhaustive BFS.

    Raises ``ValueError`` when the graph exceeds the exact-search
    limits; use :func:`repro.radio.greedy.greedy_schedule` instead.
    """
    source = check_node(source, topology.order, "source")
    if topology.order > _MAX_EXACT_NODES:
        raise ValueError(
            f"exact search limited to {_MAX_EXACT_NODES} nodes, "
            f"graph has {topology.order}"
        )
    if not topology.is_connected():
        raise ValueError(
            f"graph {topology.name!r} is not connected; broadcast impossible"
        )
    full = frozenset(topology.nodes)
    start = frozenset({source})
    if start == full:
        return RadioSchedule(topology, source, [])
    # BFS over informed sets; predecessor map reconstructs the schedule.
    frontier = [start]
    seen: Dict[FrozenSet[int], Optional[Tuple[FrozenSet[int], FrozenSet[int]]]] = {
        start: None
    }
    depth = 0
    horizon = max_steps if max_steps is not None else topology.order * 2
    while frontier:
        depth += 1
        if depth > horizon:
            raise RuntimeError(
                f"no schedule of length <= {horizon} found "
                f"(graph {topology.name!r})"
            )
        next_frontier: List[FrozenSet[int]] = []
        for state in frontier:
            for transmitters in _useful_subsets(topology, state):
                new_state = _advance(topology, state, transmitters)
                if new_state == state or new_state in seen:
                    continue
                seen[new_state] = (state, transmitters)
                if new_state == full:
                    return _reconstruct(topology, source, seen, new_state)
                next_frontier.append(new_state)
        frontier = next_frontier
    raise RuntimeError(
        f"search space exhausted without covering {topology.name!r}"
    )


def _reconstruct(topology: Topology, source: int, seen, final) -> RadioSchedule:
    """Rebuild the step sequence from the BFS predecessor map."""
    steps: List[FrozenSet[int]] = []
    state = final
    while seen[state] is not None:
        predecessor, transmitters = seen[state]
        steps.append(transmitters)
        state = predecessor
    steps.reverse()
    schedule = RadioSchedule(topology, source, steps)
    schedule.validate()
    return schedule


def optimal_broadcast_time(topology: Topology, source: int,
                           max_steps: Optional[int] = None) -> int:
    """``opt`` — the length of the shortest fault-free schedule."""
    return optimal_schedule(topology, source, max_steps=max_steps).length


def layered_min_layer2_steps(graph: LayeredGraph,
                             max_steps: Optional[int] = None) -> int:
    """Minimal number of layer-2 steps covering all of layer 3 in ``G(m)``.

    Lemma 3.3 asserts this is exactly ``m`` (so ``opt = m + 1`` with the
    source's step).  A layer-3 value ``v`` is covered by a step with
    transmitter set ``A ⊆ {1..m}`` iff ``|A ∩ P_v| = 1``; coverage is
    order-independent, so the search enumerates multisets of subsets.
    Exhaustive for ``m <= 5`` (beyond that the multiset space explodes).
    """
    m = graph.m
    check_positive_int(m, "m")
    if m > 5:
        raise ValueError(
            f"exhaustive layer-2 search limited to m <= 5, got m = {m}"
        )
    values = list(range(1, graph.n_values))
    position_sets = {value: graph.positions(value) for value in values}
    all_subsets = [
        frozenset(combo)
        for size in range(1, m + 1)
        for combo in combinations(range(1, m + 1), size)
    ]
    limit = max_steps if max_steps is not None else m
    for step_count in range(1, limit + 1):
        for multiset in combinations_with_replacement(all_subsets, step_count):
            if all(
                any(len(subset & position_sets[value]) == 1 for subset in multiset)
                for value in values
            ):
                return step_count
    raise RuntimeError(
        f"no covering multiset of <= {limit} layer-2 steps exists for m={m}"
    )
