"""Closed-form optimal fault-free radio schedules for known families.

These are the graphs whose fault-free broadcast time ``opt`` the paper
reasons about directly: the line (``opt = D``), stars (1 or 2 steps),
the complete graph (1 step), spiders (``opt = D``), and the layered
lower-bound graph ``G(m)`` (``opt = m + 1``, Lemma 3.3 — the schedule
here is exactly the one from the lemma's constructive half: "the source
transmitting in step 0, followed by ``m`` steps in which node ``b_i``
of layer 2 transmits in step ``i``").
"""

from __future__ import annotations

from repro.graphs.layered import LayeredGraph
from repro.graphs.topology import Topology
from repro.radio.schedule import RadioSchedule

__all__ = [
    "line_schedule",
    "star_schedule",
    "complete_schedule",
    "spider_schedule",
    "layered_schedule",
]


def line_schedule(topology: Topology, source: int = 0) -> RadioSchedule:
    """Relay along a line built by :func:`repro.graphs.builders.line`.

    Node ``i`` transmits at step ``i`` (source at the 0 endpoint); each
    reception has exactly one transmitting neighbour, so ``opt = D``.
    """
    if source != 0:
        raise ValueError("line_schedule assumes the source is endpoint 0")
    steps = [[node] for node in range(topology.order - 1)]
    schedule = RadioSchedule(topology, source, steps)
    schedule.validate()
    return schedule


def star_schedule(topology: Topology, source: int, center: int) -> RadioSchedule:
    """Star: 1 step when the source is the center, 2 when it is a leaf."""
    if source == center:
        steps = [[center]]
    else:
        steps = [[source], [center]]
    schedule = RadioSchedule(topology, source, steps)
    schedule.validate()
    return schedule


def complete_schedule(topology: Topology, source: int) -> RadioSchedule:
    """Complete graph: a single source transmission reaches everyone."""
    schedule = RadioSchedule(topology, source, [[source]])
    schedule.validate()
    return schedule


def spider_schedule(topology: Topology, legs: int, leg_length: int) -> RadioSchedule:
    """Spider with hub source 0: all legs progress in lock-step.

    Step 0: the hub.  Step ``k >= 1``: every depth-``k`` node of every
    leg transmits; a depth-``k+1`` node hears only its own leg's
    depth-``k`` node (legs are vertex-disjoint away from the hub), so
    there are no harmful collisions and ``opt = D = leg_length``.
    """
    steps = [[0]]
    for depth in range(1, leg_length):
        # Node ids from repro.graphs.builders.spider: leg j occupies
        # 1 + j*leg_length .. (j+1)*leg_length, depth d at offset d-1.
        steps.append([
            1 + leg * leg_length + (depth - 1) for leg in range(legs)
        ])
    schedule = RadioSchedule(topology, 0, steps)
    schedule.validate()
    return schedule


def layered_schedule(graph: LayeredGraph) -> RadioSchedule:
    """The Lemma 3.3 optimal schedule for ``G(m)``: ``m + 1`` steps.

    Step 0: the source.  Step ``i``: bit node ``b_i`` alone.  A layer-3
    value ``v`` hears ``b_i`` whenever ``i ∈ P_v``, and every value has
    at least one one-bit, so all of layer 3 is informed; total length
    ``m + 1`` matches the lemma's lower bound exactly.
    """
    steps = [[graph.source]]
    steps += [[graph.bit_node(position)] for position in range(1, graph.m + 1)]
    schedule = RadioSchedule(graph.topology, graph.source, steps)
    schedule.validate()
    return schedule
