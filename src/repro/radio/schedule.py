"""Fault-free radio broadcast schedules.

A schedule is the object Theorem 3.4 starts from: a sequence of
transmitter sets ``A_1 .. A_τ`` such that, under fault-free radio
semantics, every node ends up informed.  The schedule also induces the
functions the repetition algorithms need: ``p(v)`` — "the node from
which ``v`` gets the source message in algorithm ``A``" — and the step
at which that happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro._validation import check_node
from repro.graphs.topology import Topology

__all__ = ["ScheduleSimulation", "RadioSchedule"]


@dataclass(frozen=True)
class ScheduleSimulation:
    """Outcome of running a schedule under fault-free radio semantics.

    Attributes
    ----------
    informed_step:
        ``v -> step index`` at which ``v`` first heard the message
        (``-1`` for the source, which starts informed).
    parent:
        ``v -> p(v)``, the unique transmitter ``v`` heard at that step
        (absent for the source).
    informed:
        All informed nodes after the final step.
    """

    informed_step: Dict[int, int]
    parent: Dict[int, int]
    informed: FrozenSet[int]

    def covers(self, topology: Topology) -> bool:
        """Whether every node of ``topology`` ends up informed."""
        return len(self.informed) == topology.order


class RadioSchedule:
    """An explicit fault-free broadcast schedule ``A_1 .. A_τ``.

    Parameters
    ----------
    topology:
        The network.
    source:
        The broadcast source (informed before step 0).
    steps:
        Iterable of transmitter sets, one per step (0-indexed here;
        the paper's ``A_t`` is ``steps[t-1]``).
    """

    def __init__(self, topology: Topology, source: int,
                 steps: Iterable[Iterable[int]]):
        self._topology = topology
        self._source = check_node(source, topology.order, "source")
        self._steps: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(check_node(node, topology.order) for node in step)
            for step in steps
        )
        self._simulation: Optional[ScheduleSimulation] = None

    # -- accessors -----------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The network the schedule runs on."""
        return self._topology

    @property
    def source(self) -> int:
        """The broadcast source."""
        return self._source

    @property
    def steps(self) -> Tuple[FrozenSet[int], ...]:
        """The transmitter sets, step by step."""
        return self._steps

    @property
    def length(self) -> int:
        """Number of steps ``τ``."""
        return len(self._steps)

    def transmitters(self, step: int) -> FrozenSet[int]:
        """The set ``A_{step+1}`` (0-indexed access)."""
        return self._steps[step]

    def __len__(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        return (f"RadioSchedule(graph={self._topology.name!r}, "
                f"source={self._source}, length={self.length})")

    # -- semantics ------------------------------------------------------
    def simulate(self) -> ScheduleSimulation:
        """Run the schedule fault-free and record who informs whom.

        Results are cached; schedules are immutable.
        """
        if self._simulation is not None:
            return self._simulation
        topology = self._topology
        informed: Set[int] = {self._source}
        informed_step: Dict[int, int] = {self._source: -1}
        parent: Dict[int, int] = {}
        for index, transmitters in enumerate(self._steps):
            hearers: List[Tuple[int, int]] = []
            for node in topology.nodes:
                if node in transmitters or node in informed:
                    continue
                speaking = [
                    neighbour for neighbour in topology.neighbors(node)
                    if neighbour in transmitters
                ]
                if len(speaking) == 1:
                    hearers.append((node, speaking[0]))
            for node, speaker in hearers:
                informed.add(node)
                informed_step[node] = index
                parent[node] = speaker
        self._simulation = ScheduleSimulation(
            informed_step=informed_step,
            parent=parent,
            informed=frozenset(informed),
        )
        return self._simulation

    def validate(self) -> None:
        """Check structural validity; raise ``ValueError`` if broken.

        Requirements: every transmitter must already be informed when
        it transmits (an uninformed node has nothing to send), and the
        schedule must inform every node.
        """
        informed: Set[int] = {self._source}
        for index, transmitters in enumerate(self._steps):
            uninformed_transmitters = transmitters - informed
            if uninformed_transmitters:
                raise ValueError(
                    f"step {index}: transmitters {sorted(uninformed_transmitters)} "
                    f"are not yet informed"
                )
            for node in self._topology.nodes:
                if node in transmitters or node in informed:
                    continue
                speaking = [
                    neighbour for neighbour in self._topology.neighbors(node)
                    if neighbour in transmitters
                ]
                if len(speaking) == 1:
                    informed.add(node)
        if len(informed) != self._topology.order:
            missing = sorted(set(self._topology.nodes) - informed)
            raise ValueError(
                f"schedule does not inform nodes {missing[:10]} "
                f"({len(missing)} total)"
            )

    def is_valid(self) -> bool:
        """Validity as a boolean (see :meth:`validate`)."""
        try:
            self.validate()
        except ValueError:
            return False
        return True

    def prefix(self, length: int) -> "RadioSchedule":
        """The schedule truncated to its first ``length`` steps."""
        if not 0 <= length <= self.length:
            raise ValueError(
                f"prefix length must lie in [0, {self.length}], got {length}"
            )
        return RadioSchedule(self._topology, self._source, self._steps[:length])
