"""Fault-free radio broadcast scheduling (the ``opt`` benchmark)."""

from repro.radio.closed_form import (
    complete_schedule,
    layered_schedule,
    line_schedule,
    spider_schedule,
    star_schedule,
)
from repro.radio.exact import (
    layered_min_layer2_steps,
    optimal_broadcast_time,
    optimal_schedule,
)
from repro.radio.greedy import greedy_schedule
from repro.radio.layered_broadcast import LayeredScheduleBroadcast
from repro.radio.schedule import RadioSchedule, ScheduleSimulation

__all__ = [
    "RadioSchedule",
    "ScheduleSimulation",
    "LayeredScheduleBroadcast",
    "greedy_schedule",
    "optimal_schedule",
    "optimal_broadcast_time",
    "layered_min_layer2_steps",
    "line_schedule",
    "star_schedule",
    "complete_schedule",
    "spider_schedule",
    "layered_schedule",
]
