"""Overhead gate for the observability layer.

Two claims are asserted, not just timed:

* instrumentation is **cheap**: a batchsim sweep with the live
  ``MetricsRegistry`` installed costs < 3 % more wall clock than the
  same sweep against the no-op ``NullRegistry`` (best-of-N on each
  side, interleaved so machine drift hits both arms equally);
* instrumentation is **inert**: the two arms produce byte-identical
  indicator vectors — recording metrics never touches the experiment
  RNG.

``test_obs_recording_rate`` is the micro-benchmark the rolling history
tracks: the cost of one counter increment + one histogram observation
on the live registry, the exact pair every ``TrialRunner.run`` pays.
"""

import time

from repro.experiments.registry import resolve_scenario
from repro.montecarlo import TrialRunner
from repro.obs import NULL, MetricsRegistry, set_registry, use_registry

#: The sweep workload: a windowed-malicious batchsim run big enough
#: (~hundreds of ms) that timer jitter cannot fake a 3 % delta.
SWEEP_TRIALS = 4000
SWEEP_ROUNDS = 5
OVERHEAD_CEILING = 0.03


def _sweep():
    factory, failure_model = resolve_scenario(
        "windowed-malicious", 0.25, 2, {})
    runner = TrialRunner(factory, failure_model)
    return runner.run(trials=SWEEP_TRIALS, seed_or_stream=11)


def _timed_sweep():
    started = time.perf_counter()
    result = _sweep()
    return time.perf_counter() - started, result


def test_obs_overhead_below_three_percent():
    """Metrics on vs off: < 3 % wall-clock delta, identical bits."""
    live_times, null_times = [], []
    live_result = null_result = None
    for _ in range(SWEEP_ROUNDS):
        with use_registry():
            seconds, live_result = _timed_sweep()
            live_times.append(seconds)
        previous = set_registry(NULL)
        try:
            seconds, null_result = _timed_sweep()
            null_times.append(seconds)
        finally:
            set_registry(previous)
    # Inertness first: the comparison is only meaningful if both arms
    # computed the same thing.
    assert live_result.indicators.tobytes() == \
        null_result.indicators.tobytes()
    assert live_result.backend == null_result.backend == "batchsim"
    # Best-of-N pairs are the standard low-noise estimator here; the
    # true delta is a handful of dict lookups per 4000-trial batch.
    live, null = min(live_times), min(null_times)
    overhead = (live - null) / null
    assert overhead < OVERHEAD_CEILING, (
        f"observability overhead {overhead:.1%} exceeds "
        f"{OVERHEAD_CEILING:.0%} (live {live:.4f}s vs null {null:.4f}s)"
    )


def test_obs_recording_rate(benchmark):
    """Cost of the per-run recording pair on a live registry."""
    registry = MetricsRegistry()

    def record():
        registry.counter("mc.trials", backend="batchsim").inc(SWEEP_TRIALS)
        registry.histogram("mc.run.seconds",
                           backend="batchsim").observe(0.25)

    benchmark(record)
    assert registry.counter_value(
        "mc.trials", backend="batchsim") >= SWEEP_TRIALS
