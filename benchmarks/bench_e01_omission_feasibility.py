"""Benchmark E01 — Theorem 2.1, message passing."""

from benchmarks.helpers import run_experiment_bench


def test_e01_omission_feasibility(benchmark):
    run_experiment_bench(benchmark, "E01")
