"""Shared helper for the per-experiment benchmark harness.

Every paper result (table/figure equivalent — this paper's evaluation
is its theorems) has one benchmark that re-runs the corresponding
experiment in quick mode, asserts the claim reproduces, and reports the
wall-clock cost through pytest-benchmark.  Full-size results live in
EXPERIMENTS.md; the benches keep the reproduction continuously
exercised and timed.
"""

from repro.experiments import ExperimentConfig, run_experiment


def run_experiment_bench(benchmark, experiment_id: str) -> None:
    """Benchmark one quick-mode experiment run and assert it reproduces."""
    config = ExperimentConfig(seed=2007, quick=True)
    report = benchmark.pedantic(
        run_experiment, args=(experiment_id, config), rounds=1, iterations=1,
    )
    assert report.passed, report.render()
