"""Benchmark E14 — discussion-section variants."""

from benchmarks.helpers import run_experiment_bench


def test_e14_variants(benchmark):
    run_experiment_bench(benchmark, "E14")
