"""Benchmark E05 — Theorem 2.4 feasibility."""

from benchmarks.helpers import run_experiment_bench


def test_e05_radio_threshold(benchmark):
    run_experiment_bench(benchmark, "E05")
