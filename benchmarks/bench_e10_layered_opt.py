"""Benchmark E10 — Lemma 3.3 optimum."""

from benchmarks.helpers import run_experiment_bench


def test_e10_layered_opt(benchmark):
    run_experiment_bench(benchmark, "E10")
