"""Benchmark E08 — Lemma 3.1 line tail."""

from benchmarks.helpers import run_experiment_bench


def test_e08_line_flooding(benchmark):
    run_experiment_bench(benchmark, "E08")
