"""Benchmark E07 — Theorem 3.1 time bound."""

from benchmarks.helpers import run_experiment_bench


def test_e07_flooding_time(benchmark):
    run_experiment_bench(benchmark, "E07")
