"""Micro-benchmarks of the vectorised Monte-Carlo samplers."""

from repro.fastsim import (
    sample_flooding_times,
    sample_layered_omission,
    sample_simple_malicious_mp,
    sample_simple_malicious_radio,
)
from repro.graphs import bfs_tree, binary_tree, layered_graph


def test_malicious_mp_sampler(benchmark):
    tree = bfs_tree(binary_tree(6), 0)

    outcomes = benchmark(sample_simple_malicious_mp, tree, 21, 0.3, 5000, 3)
    assert outcomes.shape == (5000,)


def test_malicious_radio_sampler(benchmark):
    tree = bfs_tree(binary_tree(6), 0)

    outcomes = benchmark(
        sample_simple_malicious_radio, tree, 21, 0.05, 5000, 3
    )
    assert outcomes.shape == (5000,)


def test_flooding_time_sampler(benchmark):
    tree = bfs_tree(binary_tree(8), 0)

    times = benchmark(sample_flooding_times, tree, 0.3, 5000, 3)
    assert times.min() >= tree.height


def test_layered_omission_sampler(benchmark):
    graph = layered_graph(6)
    steps = [{(i % 6) + 1} for i in range(30)]

    outcomes = benchmark(
        sample_layered_omission, graph, steps, 0.5, 2000, 3, 5
    )
    assert outcomes.shape == (2000,)
