"""Benchmark E15 — design-choice ablations (DESIGN.md §6)."""

from benchmarks.helpers import run_experiment_bench


def test_e15_ablations(benchmark):
    run_experiment_bench(benchmark, "E15")
