"""Benchmark E06 — Theorem 2.4 impossibility."""

from benchmarks.helpers import run_experiment_bench


def test_e06_radio_equalizing(benchmark):
    run_experiment_bench(benchmark, "E06")
