"""Micro-benchmarks of the execution engine.

These time the substrate primitives the experiments are built on:
full engine rounds in both communication models, the radio collision
resolver, and complete broadcast batches driven through the shared
:class:`repro.montecarlo.TrialRunner` harness (engine path, trace-free
fast batch).
"""

from repro.core import SimpleOmission
from repro.engine import MESSAGE_PASSING, RADIO, deliver_radio, run_execution
from repro.failures import OmissionFailures
from repro.graphs import binary_tree, grid
from repro.montecarlo import TrialRunner


def test_mp_round_throughput(benchmark):
    topology = grid(6, 6)
    algo = SimpleOmission(topology, 0, 1, MESSAGE_PASSING, phase_length=2)

    def run():
        return run_execution(algo, OmissionFailures(0.3), 7,
                             metadata=algo.metadata(), record_trace=False)

    result = benchmark(run)
    assert result.rounds == algo.rounds


def test_radio_round_throughput(benchmark):
    topology = grid(6, 6)
    algo = SimpleOmission(topology, 0, 1, RADIO, phase_length=2)

    def run():
        return run_execution(algo, OmissionFailures(0.3), 7,
                             metadata=algo.metadata(), record_trace=False)

    result = benchmark(run)
    assert result.rounds == algo.rounds


def test_radio_collision_resolution(benchmark):
    topology = grid(10, 10)
    transmitters = {node: 1 for node in range(0, topology.order, 3)}

    heard = benchmark(deliver_radio, topology, transmitters)
    assert len(heard) == topology.order


def test_full_broadcast_batch_binary_tree(benchmark):
    """A full Monte-Carlo batch through the shared trial harness."""
    topology = binary_tree(5)
    runner = TrialRunner(
        lambda: SimpleOmission(topology, 0, 1, MESSAGE_PASSING, p=0.3),
        OmissionFailures(0.3),
        # The scalar engine path is what this micro-benchmark times;
        # either vectorised tier would collapse the batch.
        use_fastsim=False,
        use_batchsim=False,
    )

    result = benchmark(lambda: runner.run(10, 11))
    assert result.backend == "engine"
    # Theorem 2.1 sizing: essentially every trial broadcasts.
    assert result.successes >= 8
