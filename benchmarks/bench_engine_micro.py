"""Micro-benchmarks of the execution engine.

These time the substrate primitives the experiments are built on:
full engine rounds in both communication models, the radio collision
resolver, and a complete Simple-Omission broadcast.
"""

from repro.core import SimpleOmission
from repro.engine import MESSAGE_PASSING, RADIO, deliver_radio, run_execution
from repro.failures import OmissionFailures
from repro.graphs import binary_tree, grid


def test_mp_round_throughput(benchmark):
    topology = grid(6, 6)
    algo = SimpleOmission(topology, 0, 1, MESSAGE_PASSING, phase_length=2)

    def run():
        return run_execution(algo, OmissionFailures(0.3), 7,
                             metadata=algo.metadata(), record_trace=False)

    result = benchmark(run)
    assert result.rounds == algo.rounds


def test_radio_round_throughput(benchmark):
    topology = grid(6, 6)
    algo = SimpleOmission(topology, 0, 1, RADIO, phase_length=2)

    def run():
        return run_execution(algo, OmissionFailures(0.3), 7,
                             metadata=algo.metadata(), record_trace=False)

    result = benchmark(run)
    assert result.rounds == algo.rounds


def test_radio_collision_resolution(benchmark):
    topology = grid(10, 10)
    transmitters = {node: 1 for node in range(0, topology.order, 3)}

    heard = benchmark(deliver_radio, topology, transmitters)
    assert len(heard) == topology.order


def test_full_broadcast_binary_tree(benchmark):
    topology = binary_tree(5)
    algo = SimpleOmission(topology, 0, 1, MESSAGE_PASSING, p=0.3)

    def run():
        return run_execution(algo, OmissionFailures(0.3), 11,
                             metadata=algo.metadata(), record_trace=False)

    result = benchmark(run)
    assert result.is_successful_broadcast()
