"""Benchmark E13 — Section 2.2.2 hello protocol."""

from benchmarks.helpers import run_experiment_bench


def test_e13_hello(benchmark):
    run_experiment_bench(benchmark, "E13")
