"""Benchmarks of the Monte-Carlo trial subsystem.

Several claims are asserted, not just timed:

* fastsim auto-dispatch beats the naive per-trial engine loop (the
  pattern every experiment runner used before ``TrialRunner``) by at
  least 5x on a covered scenario — including the Theorem 3.4
  radio-repeat scenarios and the Theorem 2.4 equalizing-star attack;
* the batchsim tier (the vectorised multi-trial engine) beats the
  scalar engine loop by at least 3x on scenarios with **no**
  registered fastsim sampler, while staying bit-identical to it —
  covering the majority+omission repetition gap, a Kučera compiled
  plan under the flip adversary (``PlanLift``) and the windowed
  Simple-Malicious variant (``WindowedProgram``), i.e. exactly the
  schedule-heavy workloads that used to pay the scalar engine;
* batchsim process sharding (``workers=4``) beats single-process
  batchsim by at least 2x on a large windowed sweep — the
  ``--trials-scale`` workload the ROADMAP targets — while staying
  bit-identical (asserted on machines with >= 4 cores; sharding cannot
  win on fewer);
* the trace-free engine fast path (skipping the internal trace when the
  failure model is history-oblivious) beats the always-trace execution
  the seed engine performed;
* batched radio delivery over the cached CSR arrays beats the scalar
  per-round loop on a radio chain;
* adaptive trial allocation (``TrialRunner.run_until`` with the
  empirical-Bernstein stopping rule) reaches the fixed-budget Hoeffding
  CI width on a threshold sweep with at least 2x fewer total trials —
  the decisive cells far from the threshold stop doublings early;
* the remote-socket executor's wire overhead against the local pool on
  the same sweep is *recorded* (not gated — loopback workers on one
  host can only pay for the TCP round trips) while asserting the
  shipped run stays bit-identical to the local one.
"""

import os
import time
from functools import partial

import numpy as np
import pytest

from repro.analysis import estimate_success
from repro.analysis.thresholds import radio_malicious_threshold
from repro.core import SimpleMalicious, SimpleOmission
from repro.core.radio_repeat import ADOPT_ANY, ADOPT_MAJORITY, RadioRepeat
from repro.engine import (
    MESSAGE_PASSING,
    RADIO,
    deliver_radio,
    deliver_radio_batch,
    run_execution,
)
from repro.failures import (
    ComplementAdversary,
    EqualizingStarAdversary,
    MaliciousFailures,
    OmissionFailures,
)
from repro.graphs import binary_tree, grid, line, star
from repro.montecarlo import TrialRunner
from repro.radio.closed_form import line_schedule


def _best_of(callable_, repeats=3):
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_dispatch_beats_naive_engine_loop(benchmark):
    """Dispatched TrialRunner >= 5x faster than the per-trial loop."""
    topology = binary_tree(4)
    p, m, trials = 0.3, 4, 120
    failure = OmissionFailures(p)

    def factory():
        return SimpleOmission(
            topology, 0, 1, MESSAGE_PASSING, phase_length=m
        )

    runner = TrialRunner(factory, failure)
    entry = runner.dispatch_entry()
    assert entry is not None and entry.name == "simple-omission"

    def naive():
        # The pre-TrialRunner pattern: rebuild the algorithm and run a
        # traced-internals execution for every single trial.
        def trial(stream):
            algorithm = factory()
            result = run_execution(
                algorithm, failure, stream,
                metadata=algorithm.metadata(), record_trace=False,
            )
            return result.is_successful_broadcast()

        return estimate_success(trial, trials, 7)

    def dispatched():
        return runner.run(trials, 7)

    dispatched()  # warm caches before timing
    naive_time = _best_of(naive)
    dispatch_time = _best_of(dispatched)
    assert dispatch_time * 5 < naive_time, (
        f"dispatch {dispatch_time:.4f}s vs naive {naive_time:.4f}s "
        f"({naive_time / dispatch_time:.1f}x)"
    )

    result = benchmark(dispatched)
    assert result.backend == "fastsim:simple-omission"
    assert result.trials == trials
    # Same success law: the dispatched estimate agrees with the engine.
    assert abs(result.estimate - naive().estimate) < 0.2


def _assert_dispatch_speedup(factory, failure, expected_backend, trials,
                             seed, benchmark, factor=5):
    """Dispatched run must beat the *scalar* engine fallback by ``factor``x."""
    runner = TrialRunner(factory, failure)
    fallback = TrialRunner(factory, failure, use_fastsim=False,
                           use_batchsim=False)
    entry = runner.dispatch_entry()
    assert entry is not None and f"fastsim:{entry.name}" == expected_backend

    def dispatched():
        return runner.run(trials, seed)

    def engine():
        return fallback.run(trials, seed)

    dispatched()
    engine()  # warm caches before timing
    dispatch_time = _best_of(dispatched)
    engine_time = _best_of(engine)
    assert dispatch_time * factor < engine_time, (
        f"dispatch {dispatch_time:.4f}s vs engine {engine_time:.4f}s "
        f"({engine_time / dispatch_time:.1f}x)"
    )
    result = benchmark(dispatched)
    assert result.backend == expected_backend
    assert result.trials == trials
    # Same success law: the estimates must agree within MC noise.
    assert abs(result.estimate - engine().estimate) < 0.2


def test_radio_repeat_dispatch_beats_engine(benchmark):
    """Theorem 3.4 omission repetition: >= 5x over the engine batch."""
    schedule = line_schedule(line(8))
    _assert_dispatch_speedup(
        partial(RadioRepeat, schedule, 1, ADOPT_ANY, 4),
        OmissionFailures(0.4),
        "fastsim:radio-repeat-omission", 150, 7, benchmark,
    )


def test_radio_repeat_malicious_dispatch_beats_engine(benchmark):
    """Theorem 3.4 majority repetition: >= 5x over the engine batch."""
    schedule = line_schedule(line(8))
    p = round(0.5 * radio_malicious_threshold(2), 3)
    _assert_dispatch_speedup(
        partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, 9),
        MaliciousFailures(p, ComplementAdversary()),
        "fastsim:radio-repeat-malicious", 150, 9, benchmark,
    )


def test_equalizing_star_dispatch_beats_engine(benchmark):
    """Theorem 2.4 equalizing attack: >= 5x over the (traced) engine."""
    topology = star(4, source_is_center=False)
    q = radio_malicious_threshold(4)
    _assert_dispatch_speedup(
        partial(SimpleMalicious, topology, 0, 1, RADIO, 15),
        MaliciousFailures(q, EqualizingStarAdversary(source=0, center=1)),
        "fastsim:equalizing-star", 120, 11, benchmark,
    )


def _assert_batchsim_speedup(factory, failure, trials, seed, benchmark,
                             factor=3):
    """Batchsim must beat the scalar engine ``factor``x, bit-identically."""
    runner = TrialRunner(factory, failure)
    scalar = TrialRunner(factory, failure, use_fastsim=False,
                         use_batchsim=False)
    assert runner.dispatch_entry() is None
    assert runner.dispatch_backend() == "batchsim"

    def batched():
        return runner.run(trials, seed)

    def engine():
        return scalar.run(trials, seed)

    batched()
    engine()  # warm caches before timing
    batch_time = _best_of(batched)
    engine_time = _best_of(engine)
    assert batch_time * factor < engine_time, (
        f"batchsim {batch_time:.4f}s vs engine {engine_time:.4f}s "
        f"({engine_time / batch_time:.1f}x)"
    )
    result = benchmark(batched)
    assert result.backend == "batchsim"
    assert result.trials == trials
    # Not merely the same law: the same per-trial streams, so the
    # indicator vectors agree trial for trial.
    np.testing.assert_array_equal(result.indicators, engine().indicators)


def test_batchsim_beats_scalar_engine_loop(benchmark):
    """The batchsim tier >= 3x over the scalar engine, bit-identically.

    Majority adoption under plain omission failures has no registered
    fastsim sampler (the Theorem 3.4 laws cover any+omission and
    majority+malicious), so before the batchsim tier this scenario —
    like every future uncovered one — paid the full per-round Python
    interpretation.
    """
    schedule = line_schedule(line(10))
    _assert_batchsim_speedup(
        partial(RadioRepeat, schedule, 1, ADOPT_MAJORITY, 6),
        OmissionFailures(0.3), 200, 7, benchmark,
    )


def test_batchsim_kucera_plan_beats_scalar_engine(benchmark):
    """Kučera plans via PlanLift: >= 3x over the scalar engine.

    The compiled-plan interpreter was the costliest per-trial scenario
    in the library (per-round context bookkeeping at every node); the
    E09 sweeps ran it on the scalar engine before this lift.
    """
    from repro.core.kucera import KuceraBroadcast
    from repro.failures import RandomFlipAdversary, Restriction

    _assert_batchsim_speedup(
        partial(KuceraBroadcast, line(8), 0, 1, p=0.25),
        MaliciousFailures(0.25, RandomFlipAdversary(), Restriction.FLIP),
        150, 9, benchmark,
    )


def test_batchsim_windowed_beats_scalar_engine(benchmark):
    """Windowed Simple-Malicious: >= 3x over the scalar engine.

    The sliding-window acceptance has no replayable timetable, so it
    needed the dedicated ``WindowedProgram`` — the E14 variant sweep
    ran on the scalar engine before it existed.
    """
    from repro.core.windowed import WindowedMalicious

    _assert_batchsim_speedup(
        partial(WindowedMalicious, grid(4, 4), 0, 1, p=0.25),
        MaliciousFailures(0.25, ComplementAdversary()),
        150, 11, benchmark,
    )


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="process sharding cannot win on < 4 cores")
def test_sharded_batchsim_beats_single_process(benchmark):
    """Batchsim process sharding: >= 2x at 4 workers, bit-identically.

    The scenario is a large ``--trials-scale``-style windowed
    Simple-Malicious sweep (no fastsim sampler exists for it, so
    batchsim is the fastest single-process tier) — exactly the
    workload the ROADMAP's batchsim-internal sharding item targets.
    The sharded run must also report the worker count it actually used
    and stay bit-identical to the single-process batch.
    """
    from repro.core.windowed import WindowedMalicious

    factory = partial(WindowedMalicious, grid(5, 5), 0, 1, p=0.25)
    failure = MaliciousFailures(0.25, ComplementAdversary())
    trials = 6000
    single = TrialRunner(factory, failure)
    sharded = TrialRunner(factory, failure, workers=4)
    assert single.dispatch_entry() is None
    assert sharded.dispatch_backend() == "batchsim"

    def one_process():
        return single.run(trials, 7)

    def four_workers():
        return sharded.run(trials, 7)

    reference = one_process()
    four_workers()  # warm caches (and the fork path) before timing
    single_time = _best_of(one_process, repeats=2)
    sharded_time = _best_of(four_workers, repeats=2)
    assert sharded_time * 2 < single_time, (
        f"sharded {sharded_time:.4f}s vs single-process "
        f"{single_time:.4f}s ({single_time / sharded_time:.1f}x)"
    )
    result = benchmark(four_workers)
    assert result.backend == "batchsim"
    assert result.workers == 4
    # Sharding is invisible: same per-trial streams, same indicators.
    np.testing.assert_array_equal(result.indicators, reference.indicators)


def test_batched_radio_delivery_beats_scalar_loop(benchmark):
    """deliver_radio_batch beats per-round deliver_radio on a chain."""
    topology = line(256)
    batch = 200
    rng = np.random.default_rng(3)
    transmitting = rng.random((batch, topology.order)) < 0.3
    rounds = [
        {int(node): int(node) for node in np.nonzero(transmitting[row])[0]}
        for row in range(batch)
    ]
    topology.csr_neighbors()
    topology.neighbor_sets()  # warm both caches before timing

    def scalar():
        return [deliver_radio(topology, actual) for actual in rounds]

    def batched():
        return deliver_radio_batch(topology, transmitting)

    scalar()
    batched()
    scalar_time = _best_of(scalar)
    batch_time = _best_of(batched)
    assert batch_time < scalar_time, (
        f"batched {batch_time:.4f}s should beat scalar {scalar_time:.4f}s"
    )
    heard_from = benchmark(batched)
    # Spot-check semantics against the scalar path on one row.
    reference = deliver_radio(topology, rounds[0])
    for node in topology.nodes:
        if reference[node] is None:
            assert heard_from[0, node] == -1
        else:
            assert rounds[0][int(heard_from[0, node])] == reference[node]


def test_no_trace_fast_path_beats_traced_engine(benchmark):
    """Trace-free batches beat the always-trace seed engine behaviour."""
    topology = grid(6, 6)
    algorithm = SimpleOmission(topology, 0, 1, RADIO, phase_length=2)
    failure = OmissionFailures(0.3)
    runs = 20

    def batch(record_trace):
        for seed in range(runs):
            run_execution(
                algorithm, failure, seed,
                metadata=algorithm.metadata(), record_trace=record_trace,
            )

    batch(True)
    batch(False)  # warm up both paths
    # Best-of-7 each: the radio no-trace margin is ~1.3x, so the
    # minimum is robust to scheduler noise on shared CI runners.
    traced_time = _best_of(lambda: batch(True), repeats=7)
    fast_time = _best_of(lambda: batch(False), repeats=7)
    assert fast_time < traced_time, (
        f"no-trace {fast_time:.4f}s should beat traced {traced_time:.4f}s"
    )
    benchmark(lambda: batch(False))


def test_adaptive_allocation_beats_fixed_budget(benchmark):
    """Sequential stopping reaches fixed-budget width with >= 2x fewer trials.

    A Simple-Omission threshold sweep (the E01/E05-shaped workload):
    at a fixed per-phase length, the success probability crosses from
    ~1 to ~0 as ``p`` sweeps the unit interval, so most grid cells are
    decisive and only the cells near the crossing carry real variance.
    A fixed budget pays ``N`` trials for every cell; ``run_until`` with
    the empirical-Bernstein rule must hit the same (Hoeffding, fixed-N)
    CI width everywhere while spending at most half the total.
    """
    from repro.analysis import hoeffding_margin

    topology = binary_tree(4)
    failure_rates = [round(0.05 + 0.08 * k, 2) for k in range(12)]
    phase_length = 12  # sharp crossing near p ~ 0.77: few mid-variance cells
    fixed_trials = 16384
    confidence = 0.99
    # The width a fixed N-trial Hoeffding interval delivers — the
    # target the adaptive runs must reach.
    target_width = 2.0 * hoeffding_margin(fixed_trials, confidence)

    def sweep():
        outcomes = []
        for p in failure_rates:
            runner = TrialRunner(
                partial(SimpleOmission, topology, 0, 1, MESSAGE_PASSING,
                        phase_length),
                OmissionFailures(p),
            )
            outcomes.append(runner.run_until(
                target_width, 4 * fixed_trials, 7,
                confidence=confidence, bound="bernstein",
            ))
        return outcomes

    outcomes = benchmark(sweep)
    assert all(outcome.met for outcome in outcomes)
    assert all(outcome.width <= target_width for outcome in outcomes)
    assert all(outcome.backend == "fastsim:simple-omission"
               for outcome in outcomes)
    total_adaptive = sum(outcome.trials for outcome in outcomes)
    total_fixed = fixed_trials * len(failure_rates)
    assert total_adaptive * 2 <= total_fixed, (
        f"adaptive spent {total_adaptive} trials vs fixed {total_fixed} "
        f"({total_fixed / total_adaptive:.1f}x saving, need >= 2x)"
    )


def test_remote_executor_overhead_vs_local(benchmark):
    """Socket-shipping overhead of the remote executor, bit-identically.

    Two loopback ``repro.distrib`` workers against a two-process local
    pool on the same batchsim sweep.  No speedup is asserted — on one
    host the remote backend pays pickling plus a TCP round trip per
    chunk on top of the same process count, and CI runners have too
    few cores for sharding to win anyway.  What this records (for
    ``diff_bench.py``'s trend gate) is the *overhead* of the wire, and
    what it asserts is the invariant that makes the substrate safe:
    the shipped run's indicators are byte-identical to the local one.
    """
    import re
    import subprocess
    import sys

    from repro.core.windowed import WindowedMalicious
    from repro.montecarlo import RemoteSocketExecutor

    def spawn_worker():
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.distrib", "worker", "--port", "0"],
            stdout=subprocess.PIPE, text=True,
        )
        banner = process.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", banner)
        assert match, f"worker failed to start: {banner!r}"
        return process, (match.group(1), int(match.group(2)))

    factory = partial(WindowedMalicious, grid(4, 4), 0, 1, p=0.25)
    failure = MaliciousFailures(0.25, ComplementAdversary())
    trials = 2000
    workers = [spawn_worker() for _ in range(2)]
    try:
        remote = TrialRunner(
            factory, failure, workers=2,
            executor=RemoteSocketExecutor([peer for _, peer in workers]),
        )
        local = TrialRunner(factory, failure, workers=2)

        def shipped():
            return remote.run(trials, 7)

        def pooled():
            return local.run(trials, 7)

        reference = pooled()
        shipped()  # warm connections / worker-side imports before timing
        local_time = _best_of(pooled, repeats=2)
        result = benchmark(shipped)
        remote_time = _best_of(shipped, repeats=2)
        print(f"\nremote {remote_time:.4f}s vs local pool "
              f"{local_time:.4f}s "
              f"({remote_time / local_time:.2f}x wire overhead)")
        assert result.backend == "batchsim"
        np.testing.assert_array_equal(result.indicators,
                                      reference.indicators)
    finally:
        for process, _ in workers:
            if process.poll() is None:
                process.kill()
            process.wait()


def test_trial_runner_engine_batch(benchmark):
    """Throughput of the engine-fallback batch (no matching sampler)."""
    topology = grid(4, 4)
    failure = OmissionFailures(0.3)

    runner = TrialRunner(
        lambda: SimpleOmission(topology, 0, 1, RADIO, phase_length=2),
        failure,
        # Force the scalar fallback so this measures the shard loop.
        use_fastsim=False,
        use_batchsim=False,
    )

    result = benchmark(lambda: runner.run(25, 11))
    assert result.backend == "engine"
    assert result.trials == 25
