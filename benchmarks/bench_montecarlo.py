"""Benchmarks of the Monte-Carlo trial subsystem.

Two claims are asserted, not just timed:

* fastsim auto-dispatch beats the naive per-trial engine loop (the
  pattern every experiment runner used before ``TrialRunner``) by at
  least 5x on a covered scenario;
* the trace-free engine fast path (skipping the internal trace when the
  failure model is history-oblivious) beats the always-trace execution
  the seed engine performed.
"""

import time

from repro.analysis import estimate_success
from repro.core import SimpleOmission
from repro.engine import MESSAGE_PASSING, RADIO, run_execution
from repro.failures import OmissionFailures
from repro.graphs import binary_tree, grid
from repro.montecarlo import TrialRunner


def _best_of(callable_, repeats=3):
    """Minimum wall-clock of ``repeats`` runs (noise-robust timing)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_dispatch_beats_naive_engine_loop(benchmark):
    """Dispatched TrialRunner >= 5x faster than the per-trial loop."""
    topology = binary_tree(4)
    p, m, trials = 0.3, 4, 120
    failure = OmissionFailures(p)

    def factory():
        return SimpleOmission(
            topology, 0, 1, MESSAGE_PASSING, phase_length=m
        )

    runner = TrialRunner(factory, failure)
    entry = runner.dispatch_entry()
    assert entry is not None and entry.name == "simple-omission"

    def naive():
        # The pre-TrialRunner pattern: rebuild the algorithm and run a
        # traced-internals execution for every single trial.
        def trial(stream):
            algorithm = factory()
            result = run_execution(
                algorithm, failure, stream,
                metadata=algorithm.metadata(), record_trace=False,
            )
            return result.is_successful_broadcast()

        return estimate_success(trial, trials, 7)

    def dispatched():
        return runner.run(trials, 7)

    dispatched()  # warm caches before timing
    naive_time = _best_of(naive)
    dispatch_time = _best_of(dispatched)
    assert dispatch_time * 5 < naive_time, (
        f"dispatch {dispatch_time:.4f}s vs naive {naive_time:.4f}s "
        f"({naive_time / dispatch_time:.1f}x)"
    )

    result = benchmark(dispatched)
    assert result.backend == "fastsim:simple-omission"
    assert result.trials == trials
    # Same success law: the dispatched estimate agrees with the engine.
    assert abs(result.estimate - naive().estimate) < 0.2


def test_no_trace_fast_path_beats_traced_engine(benchmark):
    """Trace-free batches beat the always-trace seed engine behaviour."""
    topology = grid(6, 6)
    algorithm = SimpleOmission(topology, 0, 1, RADIO, phase_length=2)
    failure = OmissionFailures(0.3)
    runs = 20

    def batch(record_trace):
        for seed in range(runs):
            run_execution(
                algorithm, failure, seed,
                metadata=algorithm.metadata(), record_trace=record_trace,
            )

    batch(True)
    batch(False)  # warm up both paths
    # Best-of-7 each: the radio no-trace margin is ~1.3x, so the
    # minimum is robust to scheduler noise on shared CI runners.
    traced_time = _best_of(lambda: batch(True), repeats=7)
    fast_time = _best_of(lambda: batch(False), repeats=7)
    assert fast_time < traced_time, (
        f"no-trace {fast_time:.4f}s should beat traced {traced_time:.4f}s"
    )
    benchmark(lambda: batch(False))


def test_trial_runner_engine_batch(benchmark):
    """Throughput of the engine-fallback batch (no matching sampler)."""
    topology = grid(4, 4)
    failure = OmissionFailures(0.3)

    runner = TrialRunner(
        lambda: SimpleOmission(topology, 0, 1, RADIO, phase_length=2),
        failure,
        # Force the fallback so this measures the batched engine.
        use_fastsim=False,
    )

    result = benchmark(lambda: runner.run(25, 11))
    assert result.backend == "engine"
    assert result.trials == 25
