"""Soft benchmark-regression gate for the CI trajectory tracking.

Compares two pytest-benchmark JSON files (previous run vs current run)
and emits one GitHub Actions ``::warning::`` annotation per benchmark
whose mean wall-clock regressed by more than the threshold.  The gate
is *soft*: the exit code is always 0 — quick-mode benchmarks on shared
CI runners are noisy, so a regression is a prompt to look at the
trajectory, not a build failure.

Usage::

    python benchmarks/diff_bench.py PREVIOUS.json CURRENT.json
    python benchmarks/diff_bench.py --threshold 0.3 PREV.json CURR.json

A missing/unreadable previous file (first run on a branch, expired
artifact) prints a notice and exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.20


def load_means(path: str) -> Optional[Dict[str, float]]:
    """``benchmark fullname -> mean seconds`` from a pytest-benchmark JSON.

    Returns ``None`` when the file is missing or not benchmark JSON.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        return None
    means: Dict[str, float] = {}
    for entry in benchmarks:
        name = entry.get("fullname") or entry.get("name")
        stats = entry.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[str(name)] = float(mean)
    return means


def compare(previous: Dict[str, float], current: Dict[str, float],
            threshold: float = DEFAULT_THRESHOLD
            ) -> List[Tuple[str, float, float, float]]:
    """Benchmarks slower than ``(1 + threshold) * previous``.

    Returns ``(name, previous mean, current mean, relative change)``
    rows sorted by relative regression, worst first.  Benchmarks
    present on only one side are ignored — renames and new benchmarks
    have no baseline to regress against.
    """
    regressions = []
    for name, now in current.items():
        before = previous.get(name)
        if before is None:
            continue
        change = now / before - 1.0
        if change > threshold:
            regressions.append((name, before, now, change))
    regressions.sort(key=lambda row: row[3], reverse=True)
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("previous", help="previous run's benchmark JSON")
    parser.add_argument("current", help="current run's benchmark JSON")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative mean increase treated as a "
                             "regression (default 0.20 = +20%%)")
    args = parser.parse_args(argv)

    previous = load_means(args.previous)
    if previous is None:
        print(f"::notice::no previous benchmark JSON at {args.previous}; "
              f"skipping the regression diff")
        return 0
    current = load_means(args.current)
    if current is None:
        print(f"::warning::current benchmark JSON at {args.current} is "
              f"missing or malformed; nothing to diff")
        return 0

    regressions = compare(previous, current, args.threshold)
    shared = len(set(previous) & set(current))
    if not regressions:
        print(f"benchmark diff: {shared} shared benchmarks, none regressed "
              f"beyond {args.threshold:.0%}")
        return 0
    for name, before, now, change in regressions:
        print(f"::warning title=benchmark regression::{name}: mean "
              f"{before * 1000:.1f}ms -> {now * 1000:.1f}ms "
              f"({change:+.1%}, threshold {args.threshold:.0%})")
    print(f"benchmark diff: {len(regressions)}/{shared} shared benchmarks "
          f"regressed beyond {args.threshold:.0%} (soft gate, not failing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
