"""Soft benchmark-regression gate for the CI trajectory tracking.

Two modes, both *soft* (the exit code is always 0 — quick-mode
benchmarks on shared CI runners are noisy, so a regression is a prompt
to look at the trajectory, not a build failure):

* **single-step diff** — compare two pytest-benchmark JSON files
  (previous run vs current run) and emit one GitHub Actions
  ``::warning::`` annotation per benchmark whose mean wall-clock
  regressed by more than the threshold;
* **rolling history** — with ``--history PATH``, append the current
  run's per-benchmark means to a persisted rolling series (last
  ``--max-runs`` runs, carried across CI runs as an artifact) and warn
  on *trend* regressions: the current mean against the median of the
  stored runs, which single-step diffs cannot see (a slow 5%-per-PR
  drift never trips a 20% one-step gate).

Usage::

    python benchmarks/diff_bench.py PREVIOUS.json CURRENT.json
    python benchmarks/diff_bench.py --threshold 0.3 PREV.json CURR.json
    python benchmarks/diff_bench.py --history bench-history.json \
        --run-id abc1234 CURRENT.json

A missing/unreadable previous file (first run on a branch, expired
artifact) prints a notice and exits 0; a missing history file starts a
fresh series.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Any, Dict, List, Optional, Tuple

DEFAULT_THRESHOLD = 0.20

#: Rolling-history depth: enough runs for a stable median without the
#: artifact growing unboundedly.
DEFAULT_MAX_RUNS = 30


def load_means(path: str) -> Optional[Dict[str, float]]:
    """``benchmark fullname -> mean seconds`` from a pytest-benchmark JSON.

    Returns ``None`` when the file is missing or not benchmark JSON.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        return None
    means: Dict[str, float] = {}
    for entry in benchmarks:
        name = entry.get("fullname") or entry.get("name")
        stats = entry.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[str(name)] = float(mean)
    return means


def compare(previous: Dict[str, float], current: Dict[str, float],
            threshold: float = DEFAULT_THRESHOLD
            ) -> List[Tuple[str, float, float, float]]:
    """Benchmarks slower than ``(1 + threshold) * previous``.

    Returns ``(name, previous mean, current mean, relative change)``
    rows sorted by relative regression, worst first.  Benchmarks
    present on only one side are ignored — renames and new benchmarks
    have no baseline to regress against.
    """
    regressions = []
    for name, now in current.items():
        before = previous.get(name)
        if before is None:
            continue
        change = now / before - 1.0
        if change > threshold:
            regressions.append((name, before, now, change))
    regressions.sort(key=lambda row: row[3], reverse=True)
    return regressions


def load_history(path: str) -> Dict[str, Any]:
    """The rolling series at ``path`` (``{"runs": [...]}``; empty if new).

    Each run entry is ``{"run_id": str, "means": {name: seconds}}``,
    oldest first.  A missing or malformed file starts a fresh series.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {"runs": []}
    runs = payload.get("runs") if isinstance(payload, dict) else None
    if not isinstance(runs, list):
        return {"runs": []}
    cleaned = [
        run for run in runs
        if isinstance(run, dict) and isinstance(run.get("means"), dict)
    ]
    return {"runs": cleaned}


def append_history(history: Dict[str, Any], run_id: str,
                   means: Dict[str, float],
                   max_runs: int = DEFAULT_MAX_RUNS) -> Dict[str, Any]:
    """Append one run to the series, trimming to the last ``max_runs``."""
    runs = list(history.get("runs", []))
    runs.append({"run_id": str(run_id), "means": dict(means)})
    return {"runs": runs[-max_runs:]}


def trend_regressions(history: Dict[str, Any], current: Dict[str, float],
                      threshold: float = DEFAULT_THRESHOLD
                      ) -> List[Tuple[str, float, float, float, int]]:
    """Benchmarks whose current mean beats the series median by ``threshold``.

    Compares the run being judged (``current``, **not yet appended** to
    the series) against the per-benchmark median of the stored runs —
    the smoothed baseline a one-step diff lacks.  Judging *before*
    appending matters twice: the judged run can never sit inside its
    own baseline, and at full ``--max-runs`` depth the append-trim
    cannot evict the oldest (pre-drift) sample from under the median —
    both effects dampen drift detection exactly when the history fills.
    Returns ``(name, median, current, relative change, samples)`` rows
    sorted worst first; benchmarks with no stored samples are skipped.
    """
    runs = history.get("runs", [])
    if not runs:
        return []
    regressions = []
    for name, now in current.items():
        baseline = [
            float(run["means"][name]) for run in runs
            if isinstance(run["means"].get(name), (int, float))
            and run["means"][name] > 0
        ]
        if not baseline or not isinstance(now, (int, float)) or now <= 0:
            continue
        median = statistics.median(baseline)
        change = float(now) / median - 1.0
        if change > threshold:
            regressions.append((name, median, float(now), change,
                                len(baseline)))
    regressions.sort(key=lambda row: row[3], reverse=True)
    return regressions


def _report_pairwise(previous_path: str, current: Dict[str, float],
                     threshold: float) -> None:
    """The original single-step diff against one previous JSON file."""
    previous = load_means(previous_path)
    if previous is None:
        print(f"::notice::no previous benchmark JSON at {previous_path}; "
              f"skipping the regression diff")
        return
    regressions = compare(previous, current, threshold)
    shared = len(set(previous) & set(current))
    if not regressions:
        print(f"benchmark diff: {shared} shared benchmarks, none regressed "
              f"beyond {threshold:.0%}")
        return
    for name, before, now, change in regressions:
        print(f"::warning title=benchmark regression::{name}: mean "
              f"{before * 1000:.1f}ms -> {now * 1000:.1f}ms "
              f"({change:+.1%}, threshold {threshold:.0%})")
    print(f"benchmark diff: {len(regressions)}/{shared} shared benchmarks "
          f"regressed beyond {threshold:.0%} (soft gate, not failing)")


def _report_trend(history_path: str, run_id: str,
                  current: Dict[str, float], threshold: float,
                  max_runs: int) -> None:
    """Warn on trend drifts, then append the run to the rolling series.

    The trend is judged against the stored series *before* the current
    run is appended (see :func:`trend_regressions`).
    """
    stored = load_history(history_path)
    regressions = trend_regressions(stored, current, threshold)
    history = append_history(stored, run_id, current, max_runs)
    with open(history_path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
    depth = len(history["runs"])
    if not regressions:
        print(f"benchmark trend: {depth} run(s) in {history_path}, no "
              f"benchmark above its series median by {threshold:.0%}")
        return
    for name, median, now, change, samples in regressions:
        print(f"::warning title=benchmark trend regression::{name}: mean "
              f"{now * 1000:.1f}ms vs median {median * 1000:.1f}ms over "
              f"{samples} run(s) ({change:+.1%}, threshold "
              f"{threshold:.0%})")
    print(f"benchmark trend: {len(regressions)} benchmark(s) above the "
          f"rolling median by {threshold:.0%} (soft gate, not failing)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="+", metavar="JSON",
                        help="PREVIOUS.json CURRENT.json for the one-step "
                             "diff; just CURRENT.json with --history")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative mean increase treated as a "
                             "regression (default 0.20 = +20%%)")
    parser.add_argument("--history", metavar="PATH",
                        help="rolling series JSON to append the current "
                             "run to (created when missing)")
    parser.add_argument("--run-id", default="unknown", dest="run_id",
                        help="label for the appended history entry "
                             "(commit SHA)")
    parser.add_argument("--max-runs", type=int, default=DEFAULT_MAX_RUNS,
                        dest="max_runs",
                        help=f"history depth to retain (default "
                             f"{DEFAULT_MAX_RUNS})")
    args = parser.parse_args(argv)
    if args.history is None and len(args.files) != 2:
        parser.error("the one-step diff takes exactly PREVIOUS.json "
                     "CURRENT.json")
    if args.history is not None and len(args.files) > 2:
        parser.error("give at most CURRENT.json plus an optional "
                     "PREVIOUS.json with --history")

    current_path = args.files[-1]
    current = load_means(current_path)
    if current is None:
        print(f"::warning::current benchmark JSON at {current_path} is "
              f"missing or malformed; nothing to diff")
        return 0
    if len(args.files) == 2:
        _report_pairwise(args.files[0], current, args.threshold)
    if args.history is not None:
        _report_trend(args.history, args.run_id, current, args.threshold,
                      args.max_runs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
