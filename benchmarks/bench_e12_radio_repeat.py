"""Benchmark E12 — Theorem 3.4 schedule repetition."""

from benchmarks.helpers import run_experiment_bench


def test_e12_radio_repeat(benchmark):
    run_experiment_bench(benchmark, "E12")
