"""Benchmark E02 — Theorem 2.1, radio."""

from benchmarks.helpers import run_experiment_bench


def test_e02_omission_radio(benchmark):
    run_experiment_bench(benchmark, "E02")
