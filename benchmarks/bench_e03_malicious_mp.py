"""Benchmark E03 — Theorem 2.2 threshold."""

from benchmarks.helpers import run_experiment_bench


def test_e03_malicious_mp(benchmark):
    run_experiment_bench(benchmark, "E03")
