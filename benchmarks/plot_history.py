"""Render the rolling benchmark history as a gh-pages trend page.

Consumes the ``bench-history.json`` series maintained by
``diff_bench.py --history`` (last ~30 CI runs of per-benchmark mean
wall-clock) and emits a static, dependency-free ``index.html`` of small
multiples — one single-series line panel per benchmark — plus the raw
JSON alongside it, so cross-branch trends are visible without
downloading per-branch artifacts.

Design notes (kept deliberately simple because the page must build from
the Python stdlib alone): one panel per benchmark avoids multi-series
hue collisions entirely; each panel is a 2px line with an end-point
marker and a direct label on the latest value; per-point ``<title>``
elements give native hover tooltips; a table view of the latest run is
included for accessibility; light/dark both derive from CSS custom
properties.

Usage::

    python benchmarks/plot_history.py bench-history.json site/
"""

from __future__ import annotations

import html
import json
import sys
from pathlib import Path

PANEL_WIDTH = 320
PANEL_HEIGHT = 96
PAD_LEFT, PAD_RIGHT, PAD_TOP, PAD_BOTTOM = 8, 64, 12, 8

PAGE_STYLE = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #d9d8d3;
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #3a3a38;
    --series-1: #3987e5;
  }
}
body {
  background: var(--surface-1);
  color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
  margin: 2rem auto;
  max-width: 72rem;
  padding: 0 1rem;
}
h1 { font-size: 1.25rem; }
p, caption, th, td { color: var(--text-secondary); }
.panels { display: flex; flex-wrap: wrap; gap: 1.5rem 2rem; }
figure { margin: 0; }
figcaption {
  color: var(--text-primary);
  font-size: 0.8rem;
  margin-bottom: 0.25rem;
  max-width: 320px;
  overflow: hidden;
  text-overflow: ellipsis;
  white-space: nowrap;
}
table { border-collapse: collapse; margin-top: 2rem; }
th, td { border: 1px solid var(--grid); padding: 0.25rem 0.6rem;
         font-size: 0.8rem; text-align: left; }
"""


def _short_name(fullname: str) -> str:
    """``bench_montecarlo.py::test_x`` -> ``test_x`` (keep it scannable)."""
    return fullname.rsplit("::", 1)[-1]


def _series(history: dict) -> dict:
    """``name -> [(run_id, mean_seconds), ...]`` oldest first."""
    series: dict = {}
    for run in history.get("runs", []):
        run_id = str(run.get("run_id", "?"))
        for name, mean in run.get("means", {}).items():
            if isinstance(mean, (int, float)) and mean > 0:
                series.setdefault(str(name), []).append((run_id, float(mean)))
    return series


def _panel(name: str, points) -> str:
    """One small-multiple SVG: a single 2px trend line, latest value labeled."""
    means = [mean for _, mean in points]
    low, high = min(means), max(means)
    span = (high - low) or high or 1.0
    low -= 0.08 * span
    high += 0.08 * span
    inner_w = PANEL_WIDTH - PAD_LEFT - PAD_RIGHT
    inner_h = PANEL_HEIGHT - PAD_TOP - PAD_BOTTOM

    def x_of(index: int) -> float:
        if len(points) == 1:
            return PAD_LEFT + inner_w
        return PAD_LEFT + inner_w * index / (len(points) - 1)

    def y_of(mean: float) -> float:
        return PAD_TOP + inner_h * (1.0 - (mean - low) / (high - low))

    coords = [(x_of(i), y_of(mean)) for i, (_, mean) in enumerate(points)]
    polyline = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    last_x, last_y = coords[-1]
    last_run, last_mean = points[-1]
    dots = "\n".join(
        f'<circle cx="{x:.1f}" cy="{y:.1f}" r="7" fill="transparent">'
        f"<title>{html.escape(run_id)}: {mean * 1000:.1f} ms</title></circle>"
        for (x, y), (run_id, mean) in zip(coords, points)
    )
    label = (f"{last_mean * 1000:.1f} ms" if last_mean < 1
             else f"{last_mean:.2f} s")
    return f"""
<figure>
  <figcaption title="{html.escape(name)}">{html.escape(_short_name(name))}</figcaption>
  <svg width="{PANEL_WIDTH}" height="{PANEL_HEIGHT}" role="img"
       aria-label="{html.escape(_short_name(name))} mean wall-clock trend">
    <line x1="{PAD_LEFT}" y1="{PANEL_HEIGHT - PAD_BOTTOM}"
          x2="{PANEL_WIDTH - PAD_RIGHT}" y2="{PANEL_HEIGHT - PAD_BOTTOM}"
          stroke="var(--grid)" stroke-width="1"/>
    <polyline points="{polyline}" fill="none" stroke="var(--series-1)"
              stroke-width="2" stroke-linejoin="round"
              stroke-linecap="round"/>
    <circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="3.5"
            fill="var(--series-1)"/>
    <text x="{last_x + 7:.1f}" y="{last_y + 4:.1f}"
          fill="var(--text-primary)" font-size="12">{label}</text>
    {dots}
  </svg>
</figure>"""


def render(history: dict) -> str:
    """The full ``index.html`` for a history series."""
    series = _series(history)
    runs = history.get("runs", [])
    run_count = len(runs)
    panels = "\n".join(
        _panel(name, points) for name, points in sorted(series.items())
    )
    latest = runs[-1] if runs else {"run_id": "—", "means": {}}
    table_rows = "\n".join(
        f"<tr><td>{html.escape(_short_name(str(name)))}</td>"
        f"<td>{float(mean) * 1000:.1f}</td></tr>"
        for name, mean in sorted(latest.get("means", {}).items())
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>Benchmark trends</title>
<style>{PAGE_STYLE}</style>
</head>
<body>
<h1>Benchmark trends — mean wall-clock, last {run_count} CI run(s)</h1>
<p>One panel per benchmark; the label is the latest mean.  Hover a point
for its run id.  Series: <code>bench-history.json</code> (same rolling
file <code>benchmarks/diff_bench.py --history</code> soft-gates in CI).</p>
<div class="panels">
{panels}
</div>
<table>
<caption>Latest run ({html.escape(str(latest.get("run_id", "—")))})</caption>
<thead><tr><th>benchmark</th><th>mean (ms)</th></tr></thead>
<tbody>
{table_rows}
</tbody>
</table>
</body>
</html>
"""


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python benchmarks/plot_history.py "
              "BENCH_HISTORY.json OUTPUT_DIR", file=sys.stderr)
        return 2
    history_path, out_dir = Path(argv[0]), Path(argv[1])
    try:
        history = json.loads(history_path.read_text())
    except (OSError, ValueError):
        history = {"runs": []}
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "index.html").write_text(render(history))
    (out_dir / "bench-history.json").write_text(
        json.dumps(history, indent=2, sort_keys=True)
    )
    benchmarks = len(_series(history))
    print(f"wrote {out_dir / 'index.html'} "
          f"({len(history.get('runs', []))} run(s), {benchmarks} benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
