"""Benchmark E04 — Theorem 2.3 impossibility."""

from benchmarks.helpers import run_experiment_bench


def test_e04_equalizing(benchmark):
    run_experiment_bench(benchmark, "E04")
