"""Benchmark E09 — Theorem 3.2 composition algorithm."""

from benchmarks.helpers import run_experiment_bench


def test_e09_kucera(benchmark):
    run_experiment_bench(benchmark, "E09")
