"""Micro-benchmarks of the scheduling and planning substrates."""

from repro.core.kucera import build_plan, compile_plan, guarantee
from repro.graphs import bfs_tree, erdos_renyi, grid, layered_graph
from repro.radio import greedy_schedule, layered_min_layer2_steps, optimal_schedule


def test_kucera_planner(benchmark):
    plan = benchmark(build_plan, 256, 0.25, 1e-9)
    assert guarantee(plan, 0.25).length >= 256


def test_kucera_compiler(benchmark):
    plan = build_plan(64, 0.25, 1e-6)

    compiled = benchmark(compile_plan, plan, 0.25)
    assert compiled.transmission_count() > 0


def test_greedy_scheduler_grid(benchmark):
    topology = grid(8, 8)

    schedule = benchmark(greedy_schedule, topology, 0)
    assert schedule.is_valid()


def test_greedy_scheduler_random_graph(benchmark):
    topology = erdos_renyi(60, 0.12, 3)

    schedule = benchmark(greedy_schedule, topology, 0)
    assert schedule.is_valid()


def test_exact_scheduler_small(benchmark):
    topology = grid(2, 5)

    schedule = benchmark(optimal_schedule, topology, 0)
    assert schedule.is_valid()


def test_layered_exhaustive_search(benchmark):
    graph = layered_graph(4)

    minimum = benchmark(layered_min_layer2_steps, graph)
    assert minimum == 4


def test_bfs_tree_construction(benchmark):
    topology = grid(30, 30)

    tree = benchmark(bfs_tree, topology, 0)
    assert tree.height == topology.radius_from(0)
