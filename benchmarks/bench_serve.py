"""Benchmarks of the always-on simulation service.

Two claims are asserted, not just timed:

* under duplicate-heavy load (many clients re-asking for the same
  threshold-curve cells) the service absorbs at least half the
  queries through coalescing + exact memoisation instead of
  recomputing them — the acceptance bar the serving layer exists to
  clear;
* a cached replay returns **byte-identical** indicators to the cold
  run it memoised (the cache is exact, not approximate).

``test_serve_qps`` is the sustained-throughput number the rolling
benchmark history (``diff_bench.py --history``) tracks: mean seconds
per duplicate-heavy burst, lower is better, with the derived
queries/second in ``extra_info``.

``test_serve_warm_restart_hit_rate`` times the journal-rehydrated
path: a service is killed and rebuilt against the same ``--memo-path``
journal, and the replayed burst must be answered entirely from the
rehydrated cache (hit rate 1.0, zero recomputation).
"""

import asyncio
import tempfile
from pathlib import Path

from repro.serve import Query, SimulationService
from repro.serve.traffic import run_inprocess

#: One burst of the benchmark workload: heavily duplicated Monte-Carlo
#: queries, small trial counts (the serving overhead is the subject,
#: not the simulation itself).
BURST_QUERIES = 40
BURST_POOL = 4
BURST_TRIALS = 64
BURST_CONCURRENCY = 8


def _burst():
    """One cold service handling one duplicate-heavy burst."""
    service = SimulationService()
    report = asyncio.run(run_inprocess(
        service, queries=BURST_QUERIES, pool_size=BURST_POOL,
        trials=BURST_TRIALS, seed=0, concurrency=BURST_CONCURRENCY,
    ))
    return service, report


def test_serve_qps(benchmark):
    """Sustained queries/second with coalescing under duplicate load."""
    service, report = benchmark(_burst)
    assert report.errors == 0
    assert report.queries == BURST_QUERIES
    assert report.distinct_fingerprints == BURST_POOL
    # >= 50% of the duplicate-heavy burst must be answered by shared
    # work (coalesced onto an in-flight run or replayed from cache).
    assert report.shared_rate >= 0.5, report.describe()
    stats = service.stats()
    assert stats.computed <= BURST_POOL, (
        f"{stats.computed} executions for {BURST_POOL} distinct queries"
    )
    benchmark.extra_info["qps"] = round(report.qps, 1)
    benchmark.extra_info["shared_rate"] = round(report.shared_rate, 3)


def test_serve_cached_replay_is_exact(benchmark):
    """Cache hits are byte-identical to the cold run and far cheaper."""
    query = Query("windowed-malicious", 0.25, 2, 256, seed=13)
    service = SimulationService()
    cold = asyncio.run(service.submit(query))
    assert cold.source == "computed"

    def replay():
        return asyncio.run(service.submit(query))

    answer = benchmark(replay)
    assert answer.source == "cache"
    assert answer.result.indicators.tobytes() == \
        cold.result.indicators.tobytes()
    # And a fresh service recomputes the very same bytes cold.
    fresh = asyncio.run(SimulationService().submit(query))
    assert fresh.indicators_digest() == cold.indicators_digest()


def test_serve_warm_restart_hit_rate(benchmark):
    """A journal-rehydrated restart answers the whole burst from cache."""
    with tempfile.TemporaryDirectory() as tmp:
        memo_path = Path(tmp) / "memo.ndjson"
        cold = SimulationService(memo_path=memo_path)
        cold_report = asyncio.run(run_inprocess(
            cold, queries=BURST_QUERIES, pool_size=BURST_POOL,
            trials=BURST_TRIALS, seed=0, concurrency=BURST_CONCURRENCY,
        ))
        assert cold_report.errors == 0
        cold.close()

        def warm_burst():
            """Rebuild from the journal, then replay the same burst."""
            warm = SimulationService(memo_path=memo_path)
            report = asyncio.run(run_inprocess(
                warm, queries=BURST_QUERIES, pool_size=BURST_POOL,
                trials=BURST_TRIALS, seed=0, concurrency=BURST_CONCURRENCY,
            ))
            stats = warm.stats()
            warm.close()
            return report, stats

        report, stats = benchmark(warm_burst)
        assert report.errors == 0
        hits = report.sources.get("cache", 0)
        hit_rate = hits / report.queries
        # Every query in the replayed burst must be served by the
        # rehydrated journal — zero recomputation after restart.
        assert hit_rate == 1.0, report.describe()
        assert stats.computed == 0, (
            f"warm restart recomputed {stats.computed} queries"
        )
        benchmark.extra_info["warm_hit_rate"] = round(hit_rate, 3)
        benchmark.extra_info["warm_cache_hits"] = stats.cache_hits
