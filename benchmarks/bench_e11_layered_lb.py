"""Benchmark E11 — Lemma 3.4 / Theorem 3.3 lower bound."""

from benchmarks.helpers import run_experiment_bench


def test_e11_layered_lb(benchmark):
    run_experiment_bench(benchmark, "E11")
