"""Measure Monte-Carlo throughput per dispatch backend.

Writes ``benchmarks/throughput.json``, the data behind the *measured
throughput per backend* table that ``python -m repro.experiments
describe`` renders into ``EXPERIMENTS.md`` (the ROADMAP's
record-the-wall-clock-gains item).  The committed JSON pins what was
measured — machine, core count, trials/second per backend — so the
generated docs stay deterministic; re-run this tool on new hardware to
refresh the numbers, then regenerate ``EXPERIMENTS.md``:

    PYTHONPATH=src python tools/measure_throughput.py
    PYTHONPATH=src python -m repro.experiments describe --markdown \
        > EXPERIMENTS.md

Each scenario is measured on its dispatched backend and (where
tractable) on the pinned scalar engine, so every row's speedup is a
same-scenario, same-streams comparison.  The sharded batchsim row uses
``workers=4``; on machines with fewer than four cores it records the
(honest) overhead-bound rate — the committed note carries the core
count the numbers were taken on.
"""

from __future__ import annotations

import json
import os
import platform
import time
from functools import partial
from pathlib import Path

from repro.core import SimpleOmission
from repro.core.kucera import KuceraBroadcast
from repro.core.windowed import WindowedMalicious
from repro.engine import MESSAGE_PASSING
from repro.failures import (
    ComplementAdversary,
    MaliciousFailures,
    OmissionFailures,
    RandomFlipAdversary,
    Restriction,
)
from repro.graphs import binary_tree, grid, line
from repro.montecarlo import TrialRunner

OUTPUT = Path(__file__).resolve().parent.parent / "benchmarks" / "throughput.json"

SEED = 2007


def _executor_label(runner: TrialRunner) -> str:
    """Human-readable executor substrate, e.g. ``local-process (4)``."""
    substrate = runner.shard_executor.describe()
    workers = substrate.get("workers", 1)
    if workers and workers > 1:
        return f"{substrate['backend']} ({workers})"
    return str(substrate["backend"])


def _rate(runner: TrialRunner, trials: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` trials/second of ``runner.run(trials)``."""
    runner.run(min(trials, 50), SEED)  # warm caches / dispatch probe
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        runner.run(trials, SEED)
        best = min(best, time.perf_counter() - start)
    return trials / best


def measure() -> dict:
    """All throughput rows (scenario x backend), slowest engines last."""
    scenarios = [
        (
            "simple omission, binary tree d=4, m=4",
            partial(SimpleOmission, binary_tree(4), 0, 1, MESSAGE_PASSING,
                    phase_length=4),
            OmissionFailures(0.3),
            200_000,  # dispatched trials (one vectorised draw)
            2_000,    # pinned-engine trials (a rate needs no big batch)
        ),
        (
            "windowed malicious, 4x4 grid",
            partial(WindowedMalicious, grid(4, 4), 0, 1, p=0.25),
            MaliciousFailures(0.25, ComplementAdversary()),
            4_000,
            300,
        ),
        (
            "Kucera plan + flip adversary, line L=8",
            partial(KuceraBroadcast, line(8), 0, 1, p=0.25),
            MaliciousFailures(0.25, RandomFlipAdversary(), Restriction.FLIP),
            4_000,
            300,
        ),
    ]
    rows = []
    for label, factory, failure, fast_trials, engine_trials in scenarios:
        dispatched = TrialRunner(factory, failure)
        backend = dispatched.dispatch_backend()
        engine = TrialRunner(factory, failure, use_fastsim=False,
                             use_batchsim=False)
        dispatched_rate = _rate(dispatched, fast_trials)
        engine_rate = _rate(engine, engine_trials)
        rows.append({
            "scenario": label,
            "backend": backend,
            "executor": _executor_label(dispatched),
            "trials_per_second": round(dispatched_rate, 1),
            "speedup": f"{dispatched_rate / engine_rate:.1f}x vs engine",
        })
        rows.append({
            "scenario": label,
            "backend": "engine (pinned)",
            "executor": _executor_label(engine),
            "trials_per_second": round(engine_rate, 1),
            "speedup": "1.0x (reference)",
        })
    # The sharded batchsim row: the same windowed sweep, 4 workers.
    label = "windowed malicious, 5x5 grid (large sweep)"
    factory = partial(WindowedMalicious, grid(5, 5), 0, 1, p=0.25)
    failure = MaliciousFailures(0.25, ComplementAdversary())
    single = TrialRunner(factory, failure)
    sharded = TrialRunner(factory, failure, workers=4)
    single_rate = _rate(single, 6_000, repeats=2)
    sharded_rate = _rate(sharded, 6_000, repeats=2)
    rows.append({
        "scenario": label,
        "backend": "batchsim",
        "executor": _executor_label(single),
        "trials_per_second": round(single_rate, 1),
        "speedup": "1.0x (reference)",
    })
    sharded_speedup = f"{sharded_rate / single_rate:.1f}x vs 1 worker"
    if (os.cpu_count() or 1) < 4:
        # Be explicit in the row itself: on a starved machine the rate
        # records sharding *overhead*, not the parallel win that
        # bench_montecarlo asserts (>= 2x) on >= 4 cores.
        sharded_speedup += (" — measured on < 4 cores (overhead only; "
                            "bench_montecarlo asserts >= 2x on >= 4 cores)")
    rows.append({
        "scenario": label,
        "backend": "batchsim (4 workers)",
        "executor": _executor_label(sharded),
        "trials_per_second": round(sharded_rate, 1),
        "speedup": sharded_speedup,
    })
    return {
        "note": (
            "Measured by tools/measure_throughput.py; best-of runs on one "
            "machine, so treat rows as relative orders of magnitude.  "
            "Sharded rows need >= 4 physical cores to show their win."
        ),
        "machine": f"{platform.system()}-{platform.machine()}",
        "cpu_count": os.cpu_count() or 1,
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "rows": rows,
    }


def main() -> int:
    payload = measure()
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    for row in payload["rows"]:
        print(f"  {row['backend']:<24} {row['trials_per_second']:>12.1f} "
              f"trials/s  {row['speedup']:<20} {row['scenario']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
