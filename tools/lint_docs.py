"""Markdown link lint for the repo's documentation set.

Checks every relative markdown link ``[text](target)`` in the tracked
top-level ``*.md`` files against the filesystem: external URLs and
in-page anchors are skipped, everything else must resolve to an
existing file or directory (anchors on relative targets are stripped
before the check).  Exit code 1 lists the broken links.

Usage::

    python tools/lint_docs.py            # lint the repo root's *.md
    python tools/lint_docs.py DOC.md …   # lint specific files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline markdown links; images share the syntax (with a leading ``!``)
#: and are linted the same way.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def broken_links(paths):
    """``(file, target)`` pairs whose relative targets do not resolve."""
    broken = []
    for path in paths:
        text = path.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                broken.append((path, target))
    return broken


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        root = Path(__file__).resolve().parent.parent
        paths = sorted(root.glob("*.md"))
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"no such file: {path}", file=sys.stderr)
        return 2
    broken = broken_links(paths)
    for path, target in broken:
        print(f"{path}: broken link -> {target}")
    if broken:
        return 1
    print(f"linted {len(paths)} markdown file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
